"""Tests for the serving-metrics layer."""

import math

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.serving.metrics import (
    ContinuousResult,
    LatencySummary,
    RequestTiming,
    ServingMetrics,
    SLOTarget,
    collect_timings,
    percentile,
)
from repro.serving.scheduler import Request


def timing(ttft=0.1, tpot=0.02, n=10, arrival=0.0, **kw) -> RequestTiming:
    first = arrival + ttft
    return RequestTiming(
        request_id=kw.pop("request_id", 0),
        arrival_s=arrival,
        first_token_s=first,
        finish_s=first + tpot * (n - 1),
        n_tokens=n,
        **kw,
    )


class TestPercentile:
    def test_matches_numpy_linear(self):
        rng = np.random.default_rng(0)
        values = list(rng.uniform(0, 10, size=37))
        for q in (0, 25, 50, 90, 95, 99, 100):
            assert percentile(values, q) == pytest.approx(
                float(np.percentile(values, q))
            )

    def test_interpolates_even_count(self):
        # The seed's latencies[len // 2] would give 3.0 here; true p50 is 2.5.
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == pytest.approx(2.5)

    def test_single_value(self):
        assert percentile([7.0], 95) == 7.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            percentile([], 50)

    def test_bad_q_rejected(self):
        with pytest.raises(ConfigError):
            percentile([1.0], 150)


class TestLatencySummary:
    def test_ordering(self):
        s = LatencySummary.from_values([float(i) for i in range(1, 101)])
        assert s.p50_s <= s.p90_s <= s.p95_s <= s.p99_s <= s.max_s
        assert s.n == 100
        assert s.mean_s == pytest.approx(50.5)

    def test_empty_is_zero(self):
        s = LatencySummary.from_values([])
        assert s.n == 0 and s.max_s == 0.0


class TestRequestTiming:
    def test_derived_metrics(self):
        t = RequestTiming(request_id=1, arrival_s=1.0, first_token_s=1.5,
                          finish_s=3.5, n_tokens=5)
        assert t.ttft_s == pytest.approx(0.5)
        assert t.tpot_s == pytest.approx(0.5)
        assert t.e2e_s == pytest.approx(2.5)

    def test_single_token_tpot_zero(self):
        t = RequestTiming(request_id=1, arrival_s=0.0, first_token_s=0.5,
                          finish_s=0.5, n_tokens=1)
        assert t.tpot_s == 0.0

    def test_slo(self):
        slo = SLOTarget(ttft_s=1.0, tpot_s=0.1)
        assert timing(ttft=0.5, tpot=0.05).meets(slo)
        assert not timing(ttft=1.5, tpot=0.05).meets(slo)
        assert not timing(ttft=0.5, tpot=0.2).meets(slo)

    def test_slo_validation(self):
        with pytest.raises(ConfigError):
            SLOTarget(ttft_s=0.0)


class TestCollectTimings:
    def test_skips_unfinished(self):
        done = Request(0, 16, 4, arrival_s=0.0)
        done.generated = 4
        done.first_token_s = 0.1
        done.finish_s = 0.5
        half = Request(1, 16, 4)
        rows = collect_timings([done, half])
        assert [t.request_id for t in rows] == [0]
        assert rows[0].n_tokens == 4

    def test_carries_tenant_and_priority(self):
        req = Request(0, 16, 4, tenant="chat", priority=3)
        req.generated = 4
        req.first_token_s = 0.1
        req.finish_s = 0.5
        row = collect_timings([req])[0]
        assert row.tenant == "chat" and row.priority == 3


class TestServingMetrics:
    def test_goodput_counts_only_slo_met(self):
        slo = SLOTarget(ttft_s=1.0, tpot_s=0.1)
        rows = [timing(ttft=0.5, request_id=0),
                timing(ttft=2.0, request_id=1),
                timing(ttft=0.2, request_id=2)]
        m = ServingMetrics.from_timings(rows, makespan_s=10.0, slo=slo)
        assert m.slo_attainment == pytest.approx(2 / 3)
        assert m.goodput_rps == pytest.approx(0.2)
        assert m.goodput_tok_s == pytest.approx(2.0)

    def test_empty_guarded(self):
        m = ServingMetrics.from_timings([], makespan_s=5.0)
        assert m.slo_attainment == 0.0 and m.goodput_rps == 0.0


class TestContinuousResult:
    def test_from_run_empty_finished_guarded(self):
        result = ContinuousResult.from_run(
            [], makespan_s=1.0, n_steps=0, peak_running=0
        )
        assert result.n_requests == 0
        assert result.latency_p50_s == 0.0
        assert result.throughput_tok_s == 0.0

    def test_interpolated_p50(self):
        reqs = []
        for i, lat in enumerate((1.0, 2.0, 3.0, 4.0)):
            r = Request(i, 16, 4, arrival_s=0.0)
            r.generated = 4
            r.first_token_s = 0.1
            r.finish_s = lat
            reqs.append(r)
        result = ContinuousResult.from_run(
            reqs, makespan_s=4.0, n_steps=4, peak_running=4
        )
        # Interpolated, not the seed's latencies[len // 2] (== 3.0).
        assert result.latency_p50_s == pytest.approx(2.5)
        assert result.latency_max_s == pytest.approx(4.0)

    def test_tenant_timings_filter(self):
        reqs = []
        for i, tenant in enumerate(("chat", "batch", "chat")):
            r = Request(i, 16, 2, tenant=tenant)
            r.generated = 2
            r.first_token_s = 0.1
            r.finish_s = 1.0
            reqs.append(r)
        result = ContinuousResult.from_run(
            reqs, makespan_s=1.0, n_steps=2, peak_running=3
        )
        assert len(result.tenant_timings("chat")) == 2
        assert len(result.tenant_timings("batch")) == 1


def partial(ttft=0.1, arrival=0.0, n=3, **kw) -> RequestTiming:
    """A deadline-cut timing: first token stamped, no finish."""
    return RequestTiming(
        request_id=kw.pop("request_id", 0),
        arrival_s=arrival,
        first_token_s=arrival + ttft,
        finish_s=None,
        n_tokens=n,
        **kw,
    )


class TestNaNSafeSummaries:
    """The empty-and-partial-cohort contract of an overloaded window."""

    def test_nonfinite_values_filtered(self):
        s = LatencySummary.from_values([1.0, math.nan, 3.0, math.inf])
        assert s.n == 2
        assert s.mean_s == pytest.approx(2.0)
        assert s.max_s == pytest.approx(3.0)

    def test_all_nan_is_zero_summary(self):
        s = LatencySummary.from_values([math.nan, math.nan])
        assert s.n == 0 and s.max_s == 0.0

    def test_partial_timing_properties(self):
        t = partial(ttft=0.4, n=5)
        assert not t.finished
        assert t.ttft_s == pytest.approx(0.4)
        assert math.isnan(t.tpot_s)
        assert math.isnan(t.e2e_s)

    def test_finished_timing_flag(self):
        assert timing().finished

    def test_partial_never_meets_slo(self):
        generous = SLOTarget(ttft_s=100.0, tpot_s=100.0)
        assert not partial(ttft=0.01).meets(generous)

    def test_collect_timings_include_partial(self):
        cut = Request(0, 16, 8, arrival_s=0.0)
        cut.generated = 3
        cut.first_token_s = 0.2
        never_started = Request(1, 16, 8, arrival_s=0.0)
        rows = collect_timings([cut, never_started], include_partial=True)
        assert [t.request_id for t in rows] == [0]
        assert rows[0].finish_s is None
        assert rows[0].n_tokens == 3
        # The default contract still drops both.
        assert collect_timings([cut, never_started]) == []

    def test_from_timings_all_partial_is_finite(self):
        rows = [partial(ttft=0.2 * (i + 1), request_id=i)
                for i in range(4)]
        m = ServingMetrics.from_timings(rows, makespan_s=10.0)
        assert m.n_timings == 4
        assert m.slo_attainment == 0.0
        assert m.slo_violation_rate == 1.0
        assert m.goodput_rps == 0.0
        assert m.latency.n == 0
        assert m.ttft.n == 4  # TTFTs of partials are real measurements
        assert math.isfinite(m.ttft.p95_s)

    def test_from_timings_mixed_cohort(self):
        rows = [timing(ttft=0.1, request_id=0),
                partial(ttft=0.3, request_id=1)]
        m = ServingMetrics.from_timings(rows, makespan_s=10.0)
        assert m.n_timings == 2
        assert m.slo_attainment == pytest.approx(0.5)
        assert m.slo_violation_rate == pytest.approx(0.5)
        assert m.latency.n == 1
        assert m.ttft.n == 2

    def test_violation_rate_zero_when_no_timings(self):
        m = ServingMetrics.from_timings([], makespan_s=5.0)
        assert m.n_timings == 0
        assert m.slo_violation_rate == 0.0


class TestOverloadAccounting:
    """ContinuousResult conservation fields and windowed metrics."""

    @staticmethod
    def _finished(request_id, arrival, finish, n=4):
        r = Request(request_id, 16, n, arrival_s=arrival)
        r.generated = n
        r.first_token_s = arrival + 0.1
        r.finish_s = finish
        return r

    @staticmethod
    def _cut(request_id, arrival, generated=2):
        r = Request(request_id, 16, 8, arrival_s=arrival)
        r.generated = generated
        r.first_token_s = arrival + 0.2
        return r

    def test_conservation_fields(self):
        done = [self._finished(0, 0.0, 1.0)]
        cut = [self._cut(1, 0.5), Request(2, 16, 8, arrival_s=0.9)]
        result = ContinuousResult.from_run(
            done, makespan_s=2.0, n_steps=5, peak_running=2,
            unfinished=cut, deadline_s=2.0,
        )
        assert result.n_requests == 1
        assert result.n_unfinished == 2
        assert result.n_rejected == 0
        assert result.n_offered == 3
        assert result.unfinished_rate == pytest.approx(2 / 3)
        assert result.deadline_s == 2.0

    def test_partial_tokens_count_toward_throughput(self):
        done = [self._finished(0, 0.0, 1.0, n=4)]
        cut = [self._cut(1, 0.5, generated=3)]
        result = ContinuousResult.from_run(
            done, makespan_s=2.0, n_steps=5, peak_running=2,
            unfinished=cut, deadline_s=2.0,
        )
        assert result.tokens_generated == 7
        assert result.throughput_tok_s == pytest.approx(3.5)

    def test_partial_timings_included(self):
        done = [self._finished(0, 0.0, 1.0)]
        cut = [self._cut(1, 0.5)]
        result = ContinuousResult.from_run(
            done, makespan_s=2.0, n_steps=5, peak_running=2,
            unfinished=cut, deadline_s=2.0,
        )
        assert len(result.timings) == 2
        assert result.timings[1].finish_s is None
        assert result.metrics.n_timings == 2

    def test_zero_finished_overloaded_window_is_nan_safe(self):
        # The ISSUE's headline case: everything offered, nothing done.
        cut = [self._cut(i, 0.1 * i) for i in range(5)]
        result = ContinuousResult.from_run(
            [], makespan_s=1.0, n_steps=3, peak_running=5,
            unfinished=cut, deadline_s=1.0,
        )
        assert result.n_requests == 0
        assert result.unfinished_rate == 1.0
        assert result.latency_p50_s == 0.0
        assert math.isfinite(result.throughput_tok_s)
        m = result.window_metrics(0.0, 1.0)
        assert m.slo_violation_rate == 1.0
        assert math.isfinite(m.ttft.p95_s)

    def test_defaults_keep_legacy_shape(self):
        result = ContinuousResult.from_run(
            [self._finished(0, 0.0, 1.0)],
            makespan_s=1.0, n_steps=1, peak_running=1,
        )
        assert result.n_unfinished == 0
        assert result.n_rejected == 0
        assert result.deadline_s is None
        assert result.n_offered == result.n_requests

    def test_window_filters_by_arrival(self):
        reqs = [self._finished(i, float(i), float(i) + 0.5)
                for i in range(10)]
        result = ContinuousResult.from_run(
            reqs, makespan_s=10.0, n_steps=10, peak_running=1,
        )
        m = result.window_metrics(2.0, 7.0)
        assert m.n_timings == 5  # arrivals 2, 3, 4, 5, 6
        # Goodput denominator is the window length, not the makespan.
        assert m.goodput_rps == pytest.approx(m.slo_attainment * 5 / 5.0)

    def test_window_validation(self):
        result = ContinuousResult.from_run(
            [], makespan_s=1.0, n_steps=0, peak_running=0
        )
        with pytest.raises(ConfigError):
            result.window_metrics(2.0, 2.0)

    def test_empty_window_is_zero_metrics(self):
        result = ContinuousResult.from_run(
            [self._finished(0, 0.0, 1.0)],
            makespan_s=1.0, n_steps=1, peak_running=1,
        )
        m = result.window_metrics(5.0, 6.0)
        assert m.n_timings == 0
        assert m.goodput_rps == 0.0
