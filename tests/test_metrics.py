"""Tests for the serving-metrics layer."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.serving.metrics import (
    ContinuousResult,
    LatencySummary,
    RequestTiming,
    ServingMetrics,
    SLOTarget,
    collect_timings,
    percentile,
)
from repro.serving.scheduler import Request


def timing(ttft=0.1, tpot=0.02, n=10, arrival=0.0, **kw) -> RequestTiming:
    first = arrival + ttft
    return RequestTiming(
        request_id=kw.pop("request_id", 0),
        arrival_s=arrival,
        first_token_s=first,
        finish_s=first + tpot * (n - 1),
        n_tokens=n,
        **kw,
    )


class TestPercentile:
    def test_matches_numpy_linear(self):
        rng = np.random.default_rng(0)
        values = list(rng.uniform(0, 10, size=37))
        for q in (0, 25, 50, 90, 95, 99, 100):
            assert percentile(values, q) == pytest.approx(
                float(np.percentile(values, q))
            )

    def test_interpolates_even_count(self):
        # The seed's latencies[len // 2] would give 3.0 here; true p50 is 2.5.
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == pytest.approx(2.5)

    def test_single_value(self):
        assert percentile([7.0], 95) == 7.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            percentile([], 50)

    def test_bad_q_rejected(self):
        with pytest.raises(ConfigError):
            percentile([1.0], 150)


class TestLatencySummary:
    def test_ordering(self):
        s = LatencySummary.from_values([float(i) for i in range(1, 101)])
        assert s.p50_s <= s.p90_s <= s.p95_s <= s.p99_s <= s.max_s
        assert s.n == 100
        assert s.mean_s == pytest.approx(50.5)

    def test_empty_is_zero(self):
        s = LatencySummary.from_values([])
        assert s.n == 0 and s.max_s == 0.0


class TestRequestTiming:
    def test_derived_metrics(self):
        t = RequestTiming(request_id=1, arrival_s=1.0, first_token_s=1.5,
                          finish_s=3.5, n_tokens=5)
        assert t.ttft_s == pytest.approx(0.5)
        assert t.tpot_s == pytest.approx(0.5)
        assert t.e2e_s == pytest.approx(2.5)

    def test_single_token_tpot_zero(self):
        t = RequestTiming(request_id=1, arrival_s=0.0, first_token_s=0.5,
                          finish_s=0.5, n_tokens=1)
        assert t.tpot_s == 0.0

    def test_slo(self):
        slo = SLOTarget(ttft_s=1.0, tpot_s=0.1)
        assert timing(ttft=0.5, tpot=0.05).meets(slo)
        assert not timing(ttft=1.5, tpot=0.05).meets(slo)
        assert not timing(ttft=0.5, tpot=0.2).meets(slo)

    def test_slo_validation(self):
        with pytest.raises(ConfigError):
            SLOTarget(ttft_s=0.0)


class TestCollectTimings:
    def test_skips_unfinished(self):
        done = Request(0, 16, 4, arrival_s=0.0)
        done.generated = 4
        done.first_token_s = 0.1
        done.finish_s = 0.5
        half = Request(1, 16, 4)
        rows = collect_timings([done, half])
        assert [t.request_id for t in rows] == [0]
        assert rows[0].n_tokens == 4

    def test_carries_tenant_and_priority(self):
        req = Request(0, 16, 4, tenant="chat", priority=3)
        req.generated = 4
        req.first_token_s = 0.1
        req.finish_s = 0.5
        row = collect_timings([req])[0]
        assert row.tenant == "chat" and row.priority == 3


class TestServingMetrics:
    def test_goodput_counts_only_slo_met(self):
        slo = SLOTarget(ttft_s=1.0, tpot_s=0.1)
        rows = [timing(ttft=0.5, request_id=0),
                timing(ttft=2.0, request_id=1),
                timing(ttft=0.2, request_id=2)]
        m = ServingMetrics.from_timings(rows, makespan_s=10.0, slo=slo)
        assert m.slo_attainment == pytest.approx(2 / 3)
        assert m.goodput_rps == pytest.approx(0.2)
        assert m.goodput_tok_s == pytest.approx(2.0)

    def test_empty_guarded(self):
        m = ServingMetrics.from_timings([], makespan_s=5.0)
        assert m.slo_attainment == 0.0 and m.goodput_rps == 0.0


class TestContinuousResult:
    def test_from_run_empty_finished_guarded(self):
        result = ContinuousResult.from_run(
            [], makespan_s=1.0, n_steps=0, peak_running=0
        )
        assert result.n_requests == 0
        assert result.latency_p50_s == 0.0
        assert result.throughput_tok_s == 0.0

    def test_interpolated_p50(self):
        reqs = []
        for i, lat in enumerate((1.0, 2.0, 3.0, 4.0)):
            r = Request(i, 16, 4, arrival_s=0.0)
            r.generated = 4
            r.first_token_s = 0.1
            r.finish_s = lat
            reqs.append(r)
        result = ContinuousResult.from_run(
            reqs, makespan_s=4.0, n_steps=4, peak_running=4
        )
        # Interpolated, not the seed's latencies[len // 2] (== 3.0).
        assert result.latency_p50_s == pytest.approx(2.5)
        assert result.latency_max_s == pytest.approx(4.0)

    def test_tenant_timings_filter(self):
        reqs = []
        for i, tenant in enumerate(("chat", "batch", "chat")):
            r = Request(i, 16, 2, tenant=tenant)
            r.generated = 2
            r.first_token_s = 0.1
            r.finish_s = 1.0
            reqs.append(r)
        result = ContinuousResult.from_run(
            reqs, makespan_s=1.0, n_steps=2, peak_running=3
        )
        assert len(result.tenant_timings("chat")) == 2
        assert len(result.tenant_timings("batch")) == 1
