"""Tests for the interleaved rANS codec (DietGPU-style)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.codecs.rans import PROB_SCALE, RansCodec, normalize_freqs
from repro.errors import CodecError


def skewed_bytes(n: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return (rng.geometric(0.5, size=n).clip(1, 30) + 110).astype(np.uint8)


class TestNormalize:
    def test_sums_to_scale(self, rng):
        freqs = rng.integers(0, 1000, 256)
        scaled = normalize_freqs(freqs)
        assert scaled.sum() == PROB_SCALE

    def test_present_symbols_nonzero(self, rng):
        freqs = rng.integers(0, 3, 256)
        scaled = normalize_freqs(freqs)
        assert np.all((scaled > 0) == (freqs > 0))

    def test_empty(self):
        assert normalize_freqs(np.zeros(256, dtype=np.int64)).sum() == 0

    def test_extreme_skew(self):
        freqs = np.zeros(256, dtype=np.int64)
        freqs[0] = 10**9
        freqs[1] = 1
        scaled = normalize_freqs(freqs)
        assert scaled.sum() == PROB_SCALE
        assert scaled[1] >= 1

    def test_bad_shape(self):
        with pytest.raises(CodecError):
            normalize_freqs(np.zeros(10, dtype=np.int64))


class TestRoundTrip:
    @pytest.mark.parametrize("n", [0, 1, 31, 32, 33, 1000, 16_384, 50_000])
    def test_sizes(self, n):
        data = skewed_bytes(n, seed=n)
        codec = RansCodec()
        assert np.array_equal(codec.decode(codec.encode(data)), data)

    def test_uniform(self, rng):
        data = rng.integers(0, 256, 8192).astype(np.uint8)
        codec = RansCodec()
        assert np.array_equal(codec.decode(codec.encode(data)), data)

    def test_single_distinct_symbol(self):
        data = np.full(5000, 200, dtype=np.uint8)
        codec = RansCodec()
        stream = codec.encode(data)
        assert np.array_equal(codec.decode(stream), data)
        # Entropy ~0: payload should be tiny.
        assert stream.payload.nbytes < 200

    def test_fixed_stream_count(self):
        codec = RansCodec(num_streams=32)
        data = skewed_bytes(10_000, seed=2)
        stream = codec.encode(data)
        assert stream.meta["num_streams"] == 32
        assert np.array_equal(codec.decode(stream), data)

    def test_more_streams_than_symbols(self):
        codec = RansCodec(num_streams=64)
        data = skewed_bytes(10, seed=3)
        assert np.array_equal(codec.decode(codec.encode(data)), data)

    def test_near_entropy_on_skewed(self):
        data = skewed_bytes(100_000, seed=7)
        stream = RansCodec().encode(data)
        counts = np.bincount(data, minlength=256)
        p = counts[counts > 0] / data.size
        entropy_bytes = float(-(p * np.log2(p)).sum()) * data.size / 8.0
        assert stream.payload.nbytes <= entropy_bytes * 1.10 + 4 * \
            stream.meta["num_streams"]

    def test_corrupt_payload_detected(self):
        codec = RansCodec(num_streams=32)
        data = skewed_bytes(20_000, seed=8)
        stream = codec.encode(data)
        stream.payload[: stream.payload.nbytes // 2] = 0
        try:
            decoded = codec.decode(stream)
        except CodecError:
            return
        assert not np.array_equal(decoded, data)

    def test_non_u8_rejected(self):
        with pytest.raises(CodecError):
            RansCodec().encode(np.zeros(4, dtype=np.float32))

    @given(st.binary(min_size=0, max_size=2000))
    def test_roundtrip_property(self, raw):
        data = np.frombuffer(raw, dtype=np.uint8).copy()
        codec = RansCodec(num_streams=32)
        assert np.array_equal(codec.decode(codec.encode(data)), data)
