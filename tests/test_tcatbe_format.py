"""Tests for TCA-TBE container integrity and size accounting."""

import numpy as np
import pytest

from repro.bf16 import gaussian_bf16_matrix
from repro.errors import FormatError
from repro.tcatbe import compress, decompress
from repro.tcatbe.format import (
    HEADER_NBYTES,
    OFFSET_ENTRY_NBYTES,
    SEGMENT_ALIGN,
    TcaTbeMatrix,
)


@pytest.fixture
def matrix():
    return compress(gaussian_bf16_matrix(128, 128, sigma=0.02, seed=21))


class TestSizeAccounting:
    def test_bitmap_bytes(self, matrix):
        report = matrix.size_report()
        assert report.bitmaps_nbytes == matrix.n_tiles * 24

    def test_value_buffers(self, matrix):
        report = matrix.size_report()
        assert report.high_nbytes == matrix.n_high
        assert report.low_nbytes == 2 * matrix.n_low

    def test_offsets_and_header(self, matrix):
        report = matrix.size_report()
        assert report.offsets_nbytes == matrix.n_blocks * OFFSET_ENTRY_NBYTES
        assert report.header_nbytes == HEADER_NBYTES

    def test_padding_bounded(self, matrix):
        report = matrix.size_report()
        # Per BlockTile at most (align-1) bytes of padding per segment.
        assert report.padding_nbytes <= matrix.n_blocks * 2 * (SEGMENT_ALIGN - 1)

    def test_total_is_sum(self, matrix):
        report = matrix.size_report()
        assert report.total_nbytes == (
            report.bitmaps_nbytes + report.high_nbytes + report.low_nbytes
            + report.padding_nbytes + report.offsets_nbytes
            + report.header_nbytes
        )
        assert matrix.compressed_nbytes == report.total_nbytes

    def test_ratio_definition(self, matrix):
        assert matrix.ratio == pytest.approx(
            matrix.original_nbytes / matrix.compressed_nbytes
        )
        assert matrix.original_nbytes == 2 * 128 * 128

    def test_counts(self, matrix):
        assert matrix.n_tiles == (128 // 8) ** 2
        assert matrix.n_blocks == 4
        assert matrix.n_padded_elements == 128 * 128


class TestValidation:
    def test_clean_matrix_validates(self, matrix):
        matrix.validate()

    def test_tampered_bitmap_detected(self, matrix):
        bad = TcaTbeMatrix(
            shape=matrix.shape, base_exp=matrix.base_exp,
            window_size=matrix.window_size,
            bitmaps=matrix.bitmaps.copy(), high=matrix.high, low=matrix.low,
            high_starts=matrix.high_starts, low_starts=matrix.low_starts,
        )
        # Set an indicator bit at a currently-fallback position: the bitmap
        # popcount no longer matches the stored offsets.
        indicator = int(
            bad.bitmaps[0, 0] | bad.bitmaps[0, 1] | bad.bitmaps[0, 2]
        )
        free_bit = next(p for p in range(64) if not (indicator >> p) & 1)
        bad.bitmaps[0, 0] |= np.uint64(1 << free_bit)
        with pytest.raises(FormatError):
            bad.validate()

    def test_tampered_offsets_detected(self, matrix):
        bad_starts = matrix.high_starts.copy()
        bad_starts[1] += 1
        bad = TcaTbeMatrix(
            shape=matrix.shape, base_exp=matrix.base_exp,
            window_size=matrix.window_size,
            bitmaps=matrix.bitmaps, high=matrix.high, low=matrix.low,
            high_starts=bad_starts, low_starts=matrix.low_starts,
        )
        with pytest.raises(FormatError):
            bad.validate()

    def test_truncated_high_buffer_detected(self, matrix):
        bad = TcaTbeMatrix(
            shape=matrix.shape, base_exp=matrix.base_exp,
            window_size=matrix.window_size,
            bitmaps=matrix.bitmaps, high=matrix.high[:-1], low=matrix.low,
            high_starts=matrix.high_starts, low_starts=matrix.low_starts,
        )
        with pytest.raises(FormatError):
            bad.validate()

    def test_decompress_checks_consistency(self, matrix):
        bad = TcaTbeMatrix(
            shape=matrix.shape, base_exp=matrix.base_exp,
            window_size=matrix.window_size,
            bitmaps=matrix.bitmaps.copy(), high=matrix.high, low=matrix.low,
            high_starts=matrix.high_starts, low_starts=matrix.low_starts,
        )
        bad.bitmaps[:, 0] = ~np.uint64(0)
        with pytest.raises(FormatError):
            decompress(bad)

    def test_constructor_field_validation(self, matrix):
        with pytest.raises(FormatError):
            TcaTbeMatrix(
                shape=(8, 8), base_exp=255, window_size=7,
                bitmaps=matrix.bitmaps, high=matrix.high, low=matrix.low,
                high_starts=matrix.high_starts, low_starts=matrix.low_starts,
            )
        with pytest.raises(FormatError):
            TcaTbeMatrix(
                shape=(8, 8), base_exp=100, window_size=7,
                bitmaps=matrix.bitmaps.astype(np.int64), high=matrix.high,
                low=matrix.low, high_starts=matrix.high_starts,
                low_starts=matrix.low_starts,
            )
