"""Tests for TCA-TBE serialization."""

import json

import numpy as np
import pytest

from repro.bf16 import gaussian_bf16_matrix
from repro.errors import FormatError
from repro.tcatbe import compress, decompress
from repro.tcatbe.io import load_npz, save_npz


class TestSaveLoad:
    def test_roundtrip(self, tmp_path):
        w = gaussian_bf16_matrix(100, 70, sigma=0.02, seed=41)
        matrix = compress(w)
        path = tmp_path / "layer.npz"
        save_npz(matrix, path)
        loaded = load_npz(path)
        assert loaded.shape == matrix.shape
        assert loaded.base_exp == matrix.base_exp
        assert np.array_equal(decompress(loaded), w)

    def test_size_on_disk_tracks_compression(self, tmp_path):
        w = gaussian_bf16_matrix(256, 256, sigma=0.02, seed=42)
        matrix = compress(w)
        path = tmp_path / "layer.npz"
        save_npz(matrix, path)
        on_disk = path.stat().st_size
        # npz (uncompressed zip) should sit near the format's own accounting.
        assert on_disk < matrix.original_nbytes
        assert on_disk < matrix.compressed_nbytes * 1.3

    def test_bad_version_rejected(self, tmp_path):
        w = gaussian_bf16_matrix(64, 64, seed=43)
        matrix = compress(w)
        path = tmp_path / "layer.npz"
        save_npz(matrix, path)
        with np.load(path) as archive:
            data = {k: archive[k] for k in archive.files}
        header = json.loads(bytes(data["header"]).decode())
        header["version"] = 999
        data["header"] = np.frombuffer(
            json.dumps(header).encode(), dtype=np.uint8
        )
        np.savez(path, **data)
        with pytest.raises(FormatError):
            load_npz(path)

    def test_missing_header_field_rejected(self, tmp_path):
        w = gaussian_bf16_matrix(64, 64, seed=44)
        matrix = compress(w)
        path = tmp_path / "layer.npz"
        save_npz(matrix, path)
        with np.load(path) as archive:
            data = {k: archive[k] for k in archive.files}
        header = json.loads(bytes(data["header"]).decode())
        del header["base_exp"]
        data["header"] = np.frombuffer(
            json.dumps(header).encode(), dtype=np.uint8
        )
        np.savez(path, **data)
        with pytest.raises(FormatError):
            load_npz(path)

    def test_load_validates_integrity(self, tmp_path):
        w = gaussian_bf16_matrix(64, 64, seed=45)
        matrix = compress(w)
        path = tmp_path / "layer.npz"
        save_npz(matrix, path)
        with np.load(path) as archive:
            data = {k: archive[k] for k in archive.files}
        data["high"] = data["high"][:-1]  # truncate the value buffer
        np.savez(path, **data)
        with pytest.raises(FormatError):
            load_npz(path)
