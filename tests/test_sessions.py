"""Multi-turn sessions end to end: traces, profile, cache, fleet.

Covers the session workload generators (``session_trace`` and the
``chat_sessions`` profile, golden-pinned), the prefix cache wired into
the serving topologies (hit accounting, cache-off bit-compatibility),
session-affinity routing with mixed keyed/unkeyed traffic, and
router-level admission control — including the conservation property
``finished + unfinished + rejected == offered`` under overload.
"""

import json
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.gpu.specs import get_gpu
from repro.serving import (
    DisaggConfig,
    FleetConfig,
    FleetCore,
    InferenceEngine,
    PrefixCacheConfig,
    RouterConfig,
    ServingConfig,
    get_backend,
    get_model,
    session_trace,
)
from repro.serving.profiles import get_profile, list_profiles
from repro.serving.scheduler import Request

GOLDEN_PATH = Path(__file__).parent / "data" / "profile_goldens.json"
GOLDEN_ARRIVALS = [0.5 * i for i in range(8)]


@pytest.fixture(scope="module")
def engine():
    return InferenceEngine(
        get_model("llama3.1-8b"), get_gpu("rtx4090"),
        get_backend("zipserv"), gpu_mem_util=0.9,
    )


def _fields(trace):
    return [
        (r.request_id, r.arrival_s, r.prompt_len, r.max_new_tokens,
         r.session_id, r.prefix_tokens)
        for r in trace
    ]


class TestSessionTrace:
    def test_deterministic_per_seed(self):
        a = _fields(session_trace(8, 2.0, seed=7))
        b = _fields(session_trace(8, 2.0, seed=7))
        assert a == b
        assert a != _fields(session_trace(8, 2.0, seed=8))

    def test_validation(self):
        with pytest.raises(ConfigError):
            session_trace(0, 1.0)
        with pytest.raises(ConfigError):
            session_trace(4, 0.0)
        with pytest.raises(ConfigError):
            session_trace(4, 1.0, mean_turns=0.5)
        with pytest.raises(ConfigError):
            session_trace(4, 1.0, think_time_s=-1.0)

    def test_first_turns_share_only_the_system_prompt(self):
        trace = session_trace(6, 1.0, system_prompt_len=128, seed=1)
        firsts = {}
        for req in trace:
            firsts.setdefault(req.session_id, req)
        for req in firsts.values():
            assert req.prefix_tokens == 0
            assert req.prompt_len >= 128

    def test_prefix_is_exactly_the_previous_context(self):
        trace = session_trace(5, 1.0, seed=3)
        by_session: dict[int, list[Request]] = {}
        for req in trace:
            by_session.setdefault(req.session_id, []).append(req)
        for turns in by_session.values():
            turns.sort(key=lambda r: r.arrival_s)
            context = 0
            for req in turns:
                assert req.prefix_tokens == context
                assert req.prompt_len > context  # history + a new turn
                context = req.prompt_len + req.max_new_tokens

    def test_sorted_and_renumbered(self):
        trace = session_trace(6, 3.0, seed=2)
        arrivals = [r.arrival_s for r in trace]
        assert arrivals == sorted(arrivals)
        assert [r.request_id for r in trace] == list(range(len(trace)))
        assert trace[0].arrival_s == 0.0  # start_at anchor

    def test_max_turns_caps_sessions(self):
        trace = session_trace(16, 4.0, mean_turns=8.0, max_turns=3,
                              seed=4)
        counts: dict[int, int] = {}
        for req in trace:
            counts[req.session_id] = counts.get(req.session_id, 0) + 1
        assert max(counts.values()) <= 3

    def test_zero_think_time_stacks_turns(self):
        trace = session_trace(3, 1.0, think_time_s=0.0, seed=5)
        by_session: dict[int, list[float]] = {}
        for req in trace:
            by_session.setdefault(req.session_id, []).append(req.arrival_s)
        for stamps in by_session.values():
            assert len(set(stamps)) == 1


class TestChatSessionsProfile:
    def test_registered(self):
        assert "chat_sessions" in list_profiles()

    def test_matches_golden(self):
        goldens = json.loads(GOLDEN_PATH.read_text())
        trace = get_profile("chat_sessions").trace(GOLDEN_ARRIVALS, seed=0)
        got = [
            {
                "request_id": r.request_id,
                "arrival_s": r.arrival_s,
                "prompt_len": r.prompt_len,
                "max_new_tokens": r.max_new_tokens,
                "tenant": r.tenant,
                "priority": r.priority,
                "session_id": r.session_id,
                "prefix_tokens": r.prefix_tokens,
            }
            for r in trace
        ]
        assert got == goldens["chat_sessions"], (
            "chat_sessions drifted from its committed golden; if"
            " intentional, regenerate tests/data/profile_goldens.json"
            " and re-bless the capacity baselines"
        )

    def test_deterministic_per_seed(self):
        profile = get_profile("chat_sessions")
        arrivals = [0.1 * i for i in range(40)]
        assert _fields(profile.trace(arrivals, seed=9)) == _fields(
            profile.trace(arrivals, seed=9)
        )

    def test_turns_carry_growing_prefixes(self):
        profile = get_profile("chat_sessions")
        arrivals = [0.1 * i for i in range(60)]
        trace = profile.trace(arrivals, seed=2)
        assert any(r.prefix_tokens > 0 for r in trace)
        for req in trace:
            if req.prefix_tokens:
                assert req.prompt_len > req.prefix_tokens


class TestColocatedCache:
    def test_cache_off_reports_no_stats(self, engine):
        trace = get_profile("chat_sessions").trace(
            [0.2 * i for i in range(40)], seed=1
        )
        result = engine.serve(trace, config=ServingConfig())
        assert result.prefix_cache is None

    def test_cache_on_hits_and_conserves(self, engine):
        trace = get_profile("chat_sessions").trace(
            [0.2 * i for i in range(60)], seed=1
        )
        config = ServingConfig(prefix_cache=PrefixCacheConfig())
        result = engine.serve(trace, config=config)
        stats = result.prefix_cache
        assert stats is not None
        assert stats.n_hits + stats.n_misses == stats.n_lookups
        assert stats.hit_tokens <= stats.offered_prefix_tokens
        assert stats.n_hits > 0
        assert result.n_requests == len(trace)
        # Per-request output work is untouched — the cache only skips
        # prefill of tokens whose KV is already resident.
        assert result.tokens_generated == sum(
            r.max_new_tokens for r in trace
        )

    def test_cache_hits_never_slow_the_run(self, engine):
        trace_off = get_profile("chat_sessions").trace(
            [0.2 * i for i in range(60)], seed=1
        )
        trace_on = get_profile("chat_sessions").trace(
            [0.2 * i for i in range(60)], seed=1
        )
        off = engine.serve(trace_off, config=ServingConfig())
        on = engine.serve(
            trace_on,
            config=ServingConfig(prefix_cache=PrefixCacheConfig()),
        )
        assert on.makespan_s <= off.makespan_s

    def test_session_fields_alone_change_nothing_when_cache_off(
        self, engine
    ):
        # The same lengths/arrivals with and without session tagging
        # must produce byte-identical results when no cache is
        # configured — the gate for the bit-compat discipline.
        tagged = get_profile("chat_sessions").trace(
            [0.2 * i for i in range(40)], seed=3
        )
        stripped = [
            Request(
                request_id=r.request_id,
                prompt_len=r.prompt_len,
                max_new_tokens=r.max_new_tokens,
                arrival_s=r.arrival_s,
                tenant=r.tenant,
                priority=r.priority,
            )
            for r in tagged
        ]
        a = engine.serve(tagged, config=ServingConfig())
        b = engine.serve(stripped, config=ServingConfig())
        assert a.makespan_s == b.makespan_s
        assert a.n_steps == b.n_steps
        assert a.timings == b.timings

    def test_auto_codec_resolves_through_the_policy(self, engine):
        selection = engine.resolve_codecs(
            ServingConfig(prefix_cache=PrefixCacheConfig(codec="auto"))
        )
        spec = selection["prefix"]
        assert spec.codec != "auto"
        assert spec.placement == "prefix"


class TestDisaggCache:
    def test_chunked_prefill_pool_carries_the_cache(self, engine):
        trace = get_profile("chat_sessions").trace(
            [0.25 * i for i in range(50)], seed=2
        )
        config = ServingConfig(
            mode="disaggregated",
            disagg=DisaggConfig(prefill_mode="chunked"),
            prefix_cache=PrefixCacheConfig(),
        )
        result = engine.serve(trace, config=config)
        stats = result.prefix_cache
        assert stats is not None and stats.n_lookups > 0
        assert result.n_requests == len(trace)

    def test_group_prefill_rejects_a_cache(self, engine):
        trace = get_profile("chat_sessions").trace([0.0, 0.5], seed=0)
        config = ServingConfig(
            mode="disaggregated",
            prefix_cache=PrefixCacheConfig(),
        )
        with pytest.raises(ConfigError, match="chunked"):
            engine.serve(trace, config=config)


class TestSessionAffinity:
    def _mixed_trace(self):
        keyed = get_profile("chat_sessions").trace(
            [0.2 * i for i in range(40)], seed=5
        )
        unkeyed = [
            Request(
                request_id=1000 + i,
                prompt_len=64,
                max_new_tokens=16,
                arrival_s=0.2 * i + 0.1,
            )
            for i in range(40)
        ]
        return sorted(
            keyed + unkeyed, key=lambda r: (r.arrival_s, r.request_id)
        )

    def test_sessions_stick_and_unkeyed_spread(self, engine):
        trace = self._mixed_trace()
        config = ServingConfig(
            mode="fleet",
            fleet=FleetConfig(n_replicas=4, routing="session_affinity"),
        )
        core = FleetCore(
            engine.costs, engine.kv_spec, engine.plan.kv_bytes, config
        )
        core.serve(trace)
        assignments = core.last_router.assignments
        by_session: dict[int, set[int]] = {}
        unkeyed_replicas = set()
        for req in trace:
            replica = assignments[req.request_id]
            if req.session_id is not None:
                by_session.setdefault(req.session_id, set()).add(replica)
            else:
                unkeyed_replicas.add(replica)
        # Every session's turns landed on exactly one replica…
        assert all(len(v) == 1 for v in by_session.values())
        # …while the unkeyed stream round-robins across the fleet
        # instead of convoying onto one hashed "default" replica.
        assert len(unkeyed_replicas) == 4

    def test_affinity_beats_round_robin_on_hit_rate(self, engine):
        results = {}
        for routing in ("round_robin", "session_affinity"):
            trace = get_profile("chat_sessions").trace(
                [0.1 * i for i in range(120)], seed=6
            )
            config = ServingConfig(
                mode="fleet",
                fleet=FleetConfig(n_replicas=4, routing=routing),
                prefix_cache=PrefixCacheConfig(),
            )
            results[routing] = engine.serve(trace, config=config)
        affinity = results["session_affinity"].prefix_cache
        scattered = results["round_robin"].prefix_cache
        assert affinity.token_hit_rate > scattered.token_hit_rate


class TestAdmissionControl:
    def test_router_config_validation(self):
        with pytest.raises(ConfigError):
            RouterConfig(max_outstanding_per_replica=0)
        assert RouterConfig().max_outstanding_per_replica is None

    def test_fleet_config_type_checks_router(self):
        with pytest.raises(ConfigError):
            FleetConfig(router="not-a-config")

    def test_default_rejects_nothing(self, engine):
        trace = get_profile("chat").trace(
            [0.1 * i for i in range(50)], seed=0
        )
        config = ServingConfig(mode="fleet", fleet=FleetConfig(
            n_replicas=2, router=RouterConfig(),
        ))
        result = engine.serve(trace, config=config)
        assert result.n_rejected == 0
        assert result.n_requests == len(trace)

    def test_tight_cap_rejects_and_conserves(self, engine):
        trace = get_profile("chat").trace(
            [0.02 * i for i in range(120)], seed=1
        )
        config = ServingConfig(mode="fleet", fleet=FleetConfig(
            n_replicas=2,
            router=RouterConfig(max_outstanding_per_replica=4),
        ))
        result = engine.serve(trace, config=config)
        assert result.n_rejected > 0
        assert (
            result.n_requests + result.n_unfinished + result.n_rejected
            == len(trace)
        )

    @settings(max_examples=5, deadline=None)
    @given(
        rate=st.floats(10.0, 60.0),
        cap=st.integers(2, 12),
        seed=st.integers(0, 3),
    )
    def test_conservation_under_overload(self, engine, rate, cap, seed):
        # Overloaded fleet, prefix cache on, deadline cutting the run,
        # admission control rejecting — every offered request must still
        # be accounted for exactly once.
        arrivals = [i / rate for i in range(80)]
        trace = get_profile("chat_sessions").trace(arrivals, seed=seed)
        config = ServingConfig(
            mode="fleet",
            fleet=FleetConfig(
                n_replicas=2, routing="session_affinity",
                router=RouterConfig(max_outstanding_per_replica=cap),
            ),
            prefix_cache=PrefixCacheConfig(),
        )
        deadline = arrivals[-1] + 2.0
        result = engine.serve(trace, config=config, deadline_s=deadline)
        assert (
            result.n_requests + result.n_unfinished + result.n_rejected
            == len(trace)
        )
        stats = result.prefix_cache
        assert stats.hit_tokens <= stats.offered_prefix_tokens
        assert stats.n_hits + stats.n_misses == stats.n_lookups
