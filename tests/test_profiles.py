"""Tests for the workload-profile library (`repro.serving.profiles`).

Every profile must be a pure function of its seed (the capacity
baseline's comparability depends on it) and is pinned by a committed
golden (``tests/data/profile_goldens.json``) so a distribution change
shows up as a reviewable diff, never as a silent knee shift.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.errors import ConfigError, UnknownSpecError
from repro.serving.profiles import (
    PROFILES,
    WorkloadProfile,
    WorkloadStream,
    get_profile,
    list_profiles,
    register_profile,
)
from repro.serving.trace import LengthDistribution, multi_tenant_trace

GOLDEN_PATH = Path(__file__).parent / "data" / "profile_goldens.json"

#: The arrival grid the goldens were generated on (seed 0).
GOLDEN_ARRIVALS = [0.5 * i for i in range(8)]

BUILTINS = ("fixed_length", "chat", "code_generation", "rag_long_context")


def _fields(trace):
    return [
        (r.request_id, r.arrival_s, r.prompt_len, r.max_new_tokens,
         r.tenant, r.priority)
        for r in trace
    ]


def small_profile(name="tmp", weight_a=1.0, weight_b=None):
    streams = {
        "a": WorkloadStream(
            weight=weight_a,
            prompts=LengthDistribution(64, 0.2, 16, 128),
            outputs=LengthDistribution(16, 0.0, 16, 16),
        ),
    }
    if weight_b is not None:
        streams["b"] = WorkloadStream(
            weight=weight_b,
            prompts=LengthDistribution(512, 0.2, 256, 1024),
            outputs=LengthDistribution(64, 0.0, 64, 64),
            priority=1,
        )
    return WorkloadProfile(name=name, description="test", streams=streams)


class TestRegistry:
    def test_builtins_registered(self):
        assert set(BUILTINS) <= set(PROFILES)

    def test_list_profiles_sorted(self):
        assert list_profiles() == sorted(PROFILES)

    def test_get_profile_by_name(self):
        assert get_profile("chat").name == "chat"

    def test_get_profile_passthrough(self):
        p = small_profile()
        assert get_profile(p) is p

    def test_unknown_name_suggests(self):
        with pytest.raises(UnknownSpecError) as exc:
            get_profile("caht")
        assert exc.value.suggestion == "chat"
        assert "chat" in str(exc.value)

    def test_register_and_remove(self):
        p = small_profile(name="scratch_profile")
        try:
            assert register_profile(p) is p
            assert get_profile("scratch_profile") is p
        finally:
            del PROFILES["scratch_profile"]

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigError):
            register_profile(small_profile(name="chat"))


class TestValidation:
    def test_stream_weight_positive(self):
        with pytest.raises(ConfigError):
            WorkloadStream(
                weight=0.0,
                prompts=LengthDistribution(64, 0.2, 16, 128),
                outputs=LengthDistribution(16, 0.0, 16, 16),
            )

    def test_profile_needs_streams(self):
        with pytest.raises(ConfigError):
            WorkloadProfile(name="empty", description="x", streams={})

    def test_profile_needs_name(self):
        with pytest.raises(ConfigError):
            WorkloadProfile(name="", description="x",
                            streams=small_profile().streams)

    def test_trace_needs_arrivals(self):
        with pytest.raises(ConfigError):
            get_profile("chat").trace([])

    def test_trace_rejects_unsorted_arrivals(self):
        with pytest.raises(ConfigError):
            get_profile("chat").trace([1.0, 0.5])

    def test_tenant_specs_rate_positive(self):
        with pytest.raises(ConfigError):
            get_profile("chat").tenant_specs(0.0, 10)

    def test_tenant_specs_needs_request_per_stream(self):
        with pytest.raises(ConfigError):
            get_profile("chat").tenant_specs(1.0, 1)


class TestSeedDeterminism:
    """Every profile must replay bit-identically from its seed."""

    @pytest.mark.parametrize("name", BUILTINS)
    def test_trace_replays_from_seed(self, name):
        profile = get_profile(name)
        arrivals = np.linspace(0.0, 10.0, 50)
        a = _fields(profile.trace(arrivals, seed=42))
        b = _fields(profile.trace(arrivals, seed=42))
        assert a == b

    @pytest.mark.parametrize("name", BUILTINS)
    def test_seed_changes_stream(self, name):
        profile = get_profile(name)
        if name == "fixed_length":
            pytest.skip("cv=0 profile is seed-independent by design")
        arrivals = np.linspace(0.0, 10.0, 50)
        a = _fields(profile.trace(arrivals, seed=42))
        b = _fields(profile.trace(arrivals, seed=43))
        assert a != b

    def test_fixed_length_seed_independent(self):
        profile = get_profile("fixed_length")
        arrivals = np.linspace(0.0, 10.0, 20)
        a = _fields(profile.trace(arrivals, seed=0))
        b = _fields(profile.trace(arrivals, seed=999))
        assert a == b


class TestGoldens:
    """Committed per-profile goldens: distribution drift is a diff."""

    @pytest.fixture(scope="class")
    def goldens(self):
        return json.loads(GOLDEN_PATH.read_text())

    def test_every_builtin_has_a_golden(self, goldens):
        # Superset, not equality: session profiles (``chat_sessions``)
        # keep their goldens in the same file but are pinned by
        # ``tests/test_sessions.py`` (their rows carry extra fields).
        assert set(BUILTINS) <= set(goldens)

    @pytest.mark.parametrize("name", BUILTINS)
    def test_matches_golden(self, goldens, name):
        trace = get_profile(name).trace(GOLDEN_ARRIVALS, seed=0)
        got = [
            {
                "request_id": r.request_id,
                "arrival_s": r.arrival_s,
                "prompt_len": r.prompt_len,
                "max_new_tokens": r.max_new_tokens,
                "tenant": r.tenant,
                "priority": r.priority,
            }
            for r in trace
        ]
        assert got == goldens[name], (
            f"profile {name!r} drifted from its committed golden;"
            " if intentional, regenerate tests/data/profile_goldens.json"
            " and re-bless the capacity baseline"
        )


class TestTraceShape:
    @pytest.mark.parametrize("name", BUILTINS)
    def test_lengths_within_declared_bounds(self, name):
        profile = get_profile(name)
        arrivals = np.linspace(0.0, 20.0, 300)
        trace = profile.trace(arrivals, seed=1)
        for req in trace:
            stream = profile.streams[req.tenant]
            assert stream.prompts.minimum <= req.prompt_len \
                <= stream.prompts.maximum
            assert stream.outputs.minimum <= req.max_new_tokens \
                <= stream.outputs.maximum
            assert req.priority == stream.priority

    def test_arrival_stamps_preserved(self):
        arrivals = [0.0, 0.25, 1.5, 1.5, 7.0]
        trace = get_profile("chat").trace(arrivals, seed=0)
        assert [r.arrival_s for r in trace] == arrivals
        assert [r.request_id for r in trace] == list(range(5))

    def test_chat_mix_roughly_ninety_ten(self):
        arrivals = np.linspace(0.0, 100.0, 2000)
        trace = get_profile("chat").trace(arrivals, seed=2)
        interactive = sum(1 for r in trace if r.tenant == "interactive")
        assert interactive / len(trace) == pytest.approx(0.9, abs=0.03)
        assert all(
            r.priority == 1 for r in trace if r.tenant == "interactive"
        )

    def test_code_generation_is_prefill_heavy(self):
        trace = get_profile("code_generation").trace(
            np.linspace(0.0, 50.0, 500), seed=3
        )
        mean_prompt = np.mean([r.prompt_len for r in trace])
        mean_output = np.mean([r.max_new_tokens for r in trace])
        assert mean_prompt > 8 * mean_output

    def test_rag_prompts_longest_of_builtins(self):
        arrivals = np.linspace(0.0, 50.0, 500)
        means = {
            name: np.mean([
                r.prompt_len
                for r in get_profile(name).trace(arrivals, seed=4)
            ])
            for name in BUILTINS
        }
        assert means["rag_long_context"] == max(means.values())

    def test_single_stream_matches_bare_distribution_draws(self):
        # Single-stream profiles skip the assignment draw, so their
        # length sequence equals sampling the distributions directly.
        profile = get_profile("rag_long_context")
        stream = profile.streams["rag"]
        arrivals = np.linspace(0.0, 10.0, 64)
        trace = profile.trace(arrivals, seed=5)
        rng = np.random.default_rng(5)
        prompts = stream.prompts.sample(64, rng)
        outputs = stream.outputs.sample(64, rng)
        assert [r.prompt_len for r in trace] == prompts.tolist()
        assert [r.max_new_tokens for r in trace] == outputs.tolist()


class TestTenantSpecs:
    def test_rates_split_by_weight(self):
        specs = get_profile("chat").tenant_specs(10.0, 100)
        assert specs["interactive"].rate_rps == pytest.approx(9.0)
        assert specs["batch"].rate_rps == pytest.approx(1.0)
        assert sum(s.rate_rps for s in specs.values()) == pytest.approx(10.0)
        assert specs["interactive"].priority == 1

    def test_counts_split_by_weight(self):
        specs = get_profile("chat").tenant_specs(10.0, 100)
        assert specs["interactive"].n_requests == 90
        assert specs["batch"].n_requests == 10

    def test_every_stream_gets_a_request(self):
        specs = get_profile("chat").tenant_specs(10.0, 2)
        assert all(s.n_requests >= 1 for s in specs.values())

    def test_compiles_through_multi_tenant_trace(self):
        specs = get_profile("chat").tenant_specs(20.0, 30)
        trace = multi_tenant_trace(specs, seed=6)
        assert len(trace) == 30
        assert {r.tenant for r in trace} == {"interactive", "batch"}
