"""Tests for the GPU spec database and roofline model."""

import pytest

from repro.errors import UnknownSpecError
from repro.gpu.roofline import (
    attainable_tflops,
    ci_decoupled,
    ci_degradation,
    ci_gain,
    ci_gemm,
    ci_zipserv,
    roofline_time,
)
from repro.gpu.specs import GPUS, get_gpu


class TestSpecs:
    def test_all_paper_gpus_present(self):
        assert set(GPUS) == {"rtx4090", "l40s", "rtx5090", "a100", "h800"}

    def test_lookup_case_insensitive(self):
        assert get_gpu("RTX4090").name == "rtx4090"

    def test_unknown(self):
        with pytest.raises(UnknownSpecError):
            get_gpu("v100")

    def test_derived_properties(self):
        g = get_gpu("rtx4090")
        assert g.tc_flops == pytest.approx(165.2e12)
        assert g.dram_bytes_per_s == pytest.approx(1008e9)
        assert g.sm_cycles_per_s == pytest.approx(128 * 2.52e9)
        assert g.vram_bytes == pytest.approx(24e9)

    def test_datacenter_flags(self):
        assert get_gpu("a100").is_datacenter
        assert get_gpu("h800").is_datacenter
        assert not get_gpu("rtx4090").is_datacenter
        assert not get_gpu("l40s").is_datacenter

    def test_paper_bandwidth_hierarchy(self):
        # §7: HBM parts have the bandwidth headroom that blunts ZipGEMM.
        assert get_gpu("h800").dram_gbps > get_gpu("a100").dram_gbps
        assert get_gpu("a100").dram_gbps > get_gpu("rtx4090").dram_gbps
        assert get_gpu("rtx5090").dram_gbps > get_gpu("rtx4090").dram_gbps

    def test_clock_story(self):
        # §7: "1410 MHz on A100 vs 2520 MHz on RTX4090".
        assert get_gpu("a100").clock_ghz == pytest.approx(1.41)
        assert get_gpu("rtx4090").clock_ghz == pytest.approx(2.52)

    def test_ridge_point_positive(self):
        for spec in GPUS.values():
            assert spec.ridge_intensity > 10


class TestRooflineEquations:
    def test_ci_gemm_hand_computed(self):
        # CI = MNK / (MK + KN + MN)
        assert ci_gemm(4, 4, 4) == pytest.approx(64 / 48)

    def test_ci_degradation_paper_values(self):
        # §3.3: 62.3 / 62.2 / 62.0 / 61.7 % for N = 8 / 16 / 32 / 64.
        for n, expected in ((8, 0.623), (16, 0.622), (32, 0.620), (64, 0.617)):
            assert ci_degradation(4096, 4096, n) == pytest.approx(
                expected, abs=0.003
            )

    def test_ci_gain_about_half(self):
        for n in (8, 16, 32, 64):
            assert 0.45 < ci_gain(4096, 4096, n) < 0.52

    def test_ordering(self):
        # decoupled < gemm < zipserv at decode shapes.
        m = k = 4096
        for n in (8, 32, 64):
            assert ci_decoupled(m, k, n) < ci_gemm(m, k, n) < ci_zipserv(m, k, n)

    def test_ci_monotone_in_n(self):
        values = [ci_gemm(4096, 4096, n) for n in (1, 8, 64, 512)]
        assert values == sorted(values)

    def test_attainable_clamps_at_peak(self):
        g = get_gpu("rtx4090")
        assert attainable_tflops(g, 1e9) == pytest.approx(g.tc_tflops_bf16)
        low_ci = attainable_tflops(g, 1.0)
        assert low_ci == pytest.approx(g.dram_gbps / 1000.0, rel=1e-6)

    def test_roofline_time(self):
        g = get_gpu("rtx4090")
        mem_bound = roofline_time(g, 1e9, 1e9)
        assert mem_bound == pytest.approx(1e9 / g.dram_bytes_per_s)
        compute_bound = roofline_time(g, 1e15, 1.0)
        assert compute_bound == pytest.approx(1e15 / g.tc_flops)

    def test_validation(self):
        with pytest.raises(ValueError):
            ci_gemm(0, 4, 4)
        with pytest.raises(ValueError):
            ci_zipserv(4, 4, 4, cr=0.0)
        with pytest.raises(ValueError):
            attainable_tflops(get_gpu("l40s"), 0.0)
        with pytest.raises(ValueError):
            roofline_time(get_gpu("l40s"), -1.0, 1.0)
