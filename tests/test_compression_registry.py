"""One bit-exactness contract for every registered codec.

This file replaces the per-codec round-trip one-offs that used to live in
``test_bf16_codecs.py`` / ``test_vector_tbe.py`` / ``test_tcatbe_roundtrip``
with a single parametrized matrix: every codec in the registry, crossed
with the edge shapes that historically caught bugs (empty input, 1x1,
non-tile-multiple dims, all-outlier exponent spreads, IEEE special
values).  Format-specific container checks stay in the per-format files;
the *round-trip contract* lives here.
"""

import numpy as np
import pytest

from repro.bf16 import gaussian_bf16_matrix
from repro.compression import (
    PLACEMENTS,
    Codec,
    CompressionSpec,
    get_codec,
    list_codecs,
    resolve_spec,
)
from repro.errors import CodecError, ConfigError, UnknownSpecError

ALL = list_codecs()
LOSSLESS = [name for name in ALL if get_codec(name).lossless]
LOSSY = [name for name in ALL if not get_codec(name).lossless]


def _edge_cases() -> dict[str, np.ndarray]:
    rng = np.random.default_rng(11)
    gauss = gaussian_bf16_matrix(64, 96, sigma=0.02, seed=1)
    return {
        "empty": np.zeros((0,), dtype=np.uint16),
        "empty_2d": np.zeros((0, 8), dtype=np.uint16),
        "one_element": gaussian_bf16_matrix(1, 1, sigma=0.02, seed=2),
        "non_tile_multiple": gaussian_bf16_matrix(5, 7, sigma=0.02, seed=3),
        "vector_1d": gauss.ravel()[:130],
        "gaussian_tile": gauss,
        # Random bit patterns spread exponents over the full range, so
        # almost every element misses the 7-wide window (fallback path).
        "random_bits": rng.integers(0, 2**16, (3, 65)).astype(np.uint16),
        # Adversarial all-outlier: exponents alternate 0 and 255 — zero
        # in-window coverage for any window.
        "all_outlier": np.where(
            np.arange(192) % 2 == 0, 0x0000, 0x7F80
        ).astype(np.uint16).reshape(3, 64),
        "special_values": np.array(
            [[0x0000, 0x8000, 0x7F80, 0xFF80],
             [0x7FC0, 0x0001, 0x7F7F, 0xFF7F]],
            dtype=np.uint16,
        ),
    }


CASES = _edge_cases()


@pytest.mark.parametrize("case", list(CASES))
@pytest.mark.parametrize("name", LOSSLESS)
class TestLosslessRoundTrip:
    def test_bit_exact(self, name, case):
        codec = get_codec(name)
        data = CASES[case]
        enc = codec.encode(data)
        out = codec.decode(enc)
        assert out.dtype == np.uint16
        assert out.shape == data.shape
        assert np.array_equal(out, data)

    def test_accounting(self, name, case):
        codec = get_codec(name)
        data = CASES[case]
        enc = codec.encode(data)
        assert enc.codec == codec.name
        assert enc.n_elements == data.size
        if data.size == 0:
            assert enc.nbytes == 0 and enc.blob is None
        else:
            assert enc.nbytes > 0


@pytest.mark.parametrize("name", LOSSY)
class TestLossyProjection:
    """Lossy codecs must be projections: re-encoding their own output is
    the identity (the lossless stage adds zero further error)."""

    @pytest.mark.parametrize(
        "case", ["one_element", "non_tile_multiple", "gaussian_tile"]
    )
    def test_fixed_point(self, name, case):
        codec = get_codec(name)
        data = CASES[case]
        once = codec.decode(codec.encode(data))
        twice = codec.decode(codec.encode(once))
        assert once.shape == data.shape
        assert np.array_equal(twice, once)

    def test_empty(self, name):
        codec = get_codec(name)
        enc = codec.encode(CASES["empty"])
        assert codec.decode(enc).shape == (0,)


class TestRegistry:
    def test_expected_codecs_registered(self):
        assert {"none", "tcatbe", "vector_tbe", "dfloat11", "dietgpu",
                "nvcomp", "zipquant"} <= set(ALL)

    def test_aliases(self):
        assert get_codec("kvcomp") is get_codec("vector_tbe")
        assert get_codec("dense") is get_codec("none")
        assert get_codec("raw") is get_codec("none")
        assert get_codec("TCATBE") is get_codec("tcatbe")

    def test_unknown_codec(self):
        with pytest.raises(UnknownSpecError):
            get_codec("zstd")

    def test_wrong_dtype_rejected(self):
        with pytest.raises(CodecError):
            get_codec("tcatbe").encode(np.zeros((4, 4), dtype=np.float32))

    def test_codec_blob_mismatch_rejected(self):
        enc = get_codec("none").encode(CASES["gaussian_tile"])
        with pytest.raises(CodecError):
            get_codec("tcatbe").decode(enc)

    def test_decoupled_codec_needs_baseline(self):
        with pytest.raises(ConfigError):
            Codec(name="broken", linear_mode="decoupled")


class TestSpecResolution:
    @pytest.mark.parametrize("placement", PLACEMENTS)
    @pytest.mark.parametrize("name", ALL)
    def test_every_codec_resolves_in_every_placement(self, name, placement):
        spec = resolve_spec(name, placement)
        assert spec.ratio >= 1.0
        assert spec.placement == placement
        assert spec.resolve() is get_codec(name)

    def test_explicit_ratio_wins(self):
        spec = resolve_spec("vector_tbe", "kv", ratio=2.0)
        assert spec.ratio == 2.0

    def test_identity_spec(self):
        assert resolve_spec("none", "wire").identity
        assert not resolve_spec("tcatbe", "weight").identity

    def test_bad_ratio_rejected(self):
        with pytest.raises(ConfigError):
            CompressionSpec(codec="none", placement="kv", ratio=0.5,
                            sigma=0.05)

    def test_bad_placement_rejected(self):
        with pytest.raises(ConfigError):
            resolve_spec("none", "hbm")

    def test_weights_price_differently_from_activations(self):
        codec = get_codec("tcatbe")
        # Outlier-derated activations compress slightly worse.
        assert codec.ratio("kv") < codec.ratio("weight")
        assert codec.ratio("wire") == codec.ratio("kv")


class TestServingConfigSlots:
    """The acceptance criterion: every registered codec is valid in every
    ``ServingConfig`` slot, and leaving slots at their defaults stays
    bit-compatible with the pre-registry stack."""

    def test_any_codec_in_any_slot(self):
        from repro.serving.serve import DisaggConfig, ServingConfig

        for name in ALL:
            config = ServingConfig(
                mode="disaggregated",
                disagg=DisaggConfig(link_gb_per_s=1.0),
                weight_codec=name,
                kv_codec=name,
                transfer_codec=name,
            )
            assert config.resolved_transfer_codec == name

    def test_unknown_slot_codec_rejected(self):
        from repro.serving.serve import ServingConfig

        with pytest.raises(UnknownSpecError):
            ServingConfig(weight_codec="zstd")
        with pytest.raises(UnknownSpecError):
            ServingConfig(kv_codec="zstd")
        with pytest.raises(UnknownSpecError):
            ServingConfig(transfer_codec="zstd")

    def test_explicit_backend_codec_matches_default_bitwise(self):
        from repro.gpu.specs import get_gpu
        from repro.serving.backends import get_backend
        from repro.serving.engine import InferenceEngine
        from repro.serving.serve import ServingConfig
        from repro.serving.trace import multi_tenant_trace

        engine = InferenceEngine(
            get_model_cached(), get_gpu("rtx4090"), get_backend("zipserv"),
        )
        default = engine.serve(
            multi_tenant_trace(seed=7),
            config=ServingConfig(prefill_mode="chunked"),
        )
        explicit = engine.serve(
            multi_tenant_trace(seed=7),
            config=ServingConfig(
                prefill_mode="chunked", weight_codec="tcatbe",
                kv_codec="none",
            ),
        )
        # Same floats, not merely close: the explicit slots resolve to
        # exactly what the backend defaults resolved to.
        assert explicit.makespan_s == default.makespan_s
        assert explicit.timings == default.timings

    def test_weight_slot_keeps_engine_kv_compression(self):
        from repro.gpu.specs import get_gpu
        from repro.serving.backends import get_backend
        from repro.serving.engine import InferenceEngine
        from repro.serving.serve import ServingConfig
        from repro.serving.trace import multi_tenant_trace

        engine = InferenceEngine(
            get_model_cached(), get_gpu("rtx4090"), get_backend("zipserv"),
            kv_compression_ratio=1.4,
        )
        default = engine.serve(
            multi_tenant_trace(seed=7),
            config=ServingConfig(prefill_mode="chunked"),
        )
        # Setting only the weight slot (to the backend's own codec) must
        # not silently drop the engine's construction-time KV ratio.
        with_weight = engine.serve(
            multi_tenant_trace(seed=7),
            config=ServingConfig(
                prefill_mode="chunked", weight_codec="tcatbe",
            ),
        )
        assert with_weight.makespan_s == default.makespan_s
        assert with_weight.timings == default.timings


def get_model_cached():
    from repro.serving.models import get_model

    return get_model("llama3.1-8b")


class TestLayerEstimatorFacade:
    """serving.weights.estimate_layer_compression accepts any registry
    codec, and its historical names keep their exact values."""

    def test_any_registered_codec(self):
        from repro.serving.weights import estimate_layer_compression

        for name in ALL:
            comp = estimate_layer_compression(4096, 4096, 0.016, name)
            assert comp.ratio >= 1.0

    def test_matches_registry_math(self):
        from repro.serving.weights import estimate_layer_compression

        comp = estimate_layer_compression(4096, 4096, 0.016, "tcatbe")
        assert comp.ratio == get_codec("tcatbe").ratio("weight", 0.016)

    def test_kvcomp_ratio_single_sourced(self):
        from repro.extensions.kvcomp import kv_compression_ratio

        assert kv_compression_ratio(0.05) == get_codec("kvcomp").ratio(
            "kv", 0.05
        )
