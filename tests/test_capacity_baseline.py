"""Structural checks on the committed capacity baseline.

``benchmarks/BENCH_capacity_baseline.json`` is a measured artifact
(blessed by ``bench_capacity.py --update-baseline``), so these tests
read it rather than re-measuring: they pin the *shape* the rest of the
tooling depends on and the headline acceptance property — on the
0.125 GB/s link, the auto-codec stack's knee is strictly above raw
transfer's for every workload profile.  If a re-bless breaks one of
these, the capacity story regressed, not the test.
"""

import json
from pathlib import Path

import pytest

from repro.serving import list_profiles

BASELINE_PATH = (
    Path(__file__).parent.parent
    / "benchmarks" / "BENCH_capacity_baseline.json"
)

CONFIG_NAMES = ("colocated", "disagg", "auto_codec")

#: Extra configs measured on the session profile only (see
#: ``bench_capacity.SESSION_CONFIGS``): the prefix-cache comparison,
#: with the plain ``colocated`` row as their cache-off baseline.
SESSION_PROFILE = "chat_sessions"
SESSION_CONFIG_NAMES = ("prefix_raw", "prefix_compressed")


@pytest.fixture(scope="module")
def baseline():
    return json.loads(BASELINE_PATH.read_text())


def test_baseline_committed(baseline):
    assert not baseline["config"]["quick"], (
        "the committed baseline must come from a full (bisecting) run,"
        " not --quick"
    )
    assert baseline["config"]["link_gb_per_s"] == pytest.approx(0.125)


def test_every_profile_and_config_present(baseline):
    assert set(baseline["profiles"]) == set(list_profiles())
    for profile, configs in baseline["profiles"].items():
        expected = set(CONFIG_NAMES)
        if profile == SESSION_PROFILE:
            expected |= set(SESSION_CONFIG_NAMES)
        assert set(configs) == expected, profile


def test_knees_positive_and_converged(baseline):
    for profile, configs in baseline["profiles"].items():
        for config, row in configs.items():
            assert row["knee_rps"] > 0, f"{profile}/{config}"
            assert row["n_probes"] >= 2, f"{profile}/{config}"


def test_auto_codec_knee_strictly_above_raw_on_starved_link(baseline):
    """The paper's claim, end to end: compression buys admissible rate.

    On the bandwidth-starved link, policy-selected codecs must sustain
    a strictly higher saturating rate than raw BF16 transfer — for
    every workload profile, not just the friendly ones.
    """
    for profile, configs in baseline["profiles"].items():
        raw = configs["disagg"]["knee_rps"]
        auto = configs["auto_codec"]["knee_rps"]
        assert auto > raw, (
            f"{profile}: auto_codec knee {auto} rps not strictly above"
            f" raw-transfer knee {raw} rps"
        )


def test_prefix_cache_knee_above_cache_off(baseline):
    """The session headline: skipping cached prefill buys request rate.

    On the multi-turn session profile, both prefix-cache configs must
    sustain a strictly higher knee than the cache-off ``colocated``
    stack — the KV carved away from the batch pool pays for itself in
    skipped prefill, with margin.
    """
    configs = baseline["profiles"][SESSION_PROFILE]
    off = configs["colocated"]["knee_rps"]
    for name in SESSION_CONFIG_NAMES:
        on = configs[name]["knee_rps"]
        assert on > off, (
            f"{name}: cache-on knee {on} rps not strictly above the"
            f" cache-off knee {off} rps"
        )


def test_compressed_cold_tier_beats_raw_at_equal_memory(baseline):
    """Same carve, better organisation: hot+compressed over all-raw.

    Both session configs carve the identical KV fraction; the
    compressed variant holds ratio x more prefixes in its cold tier,
    so at the committed equal-load probe it must hit strictly more
    tokens, and its knee must not fall below the raw variant's.
    """
    configs = baseline["profiles"][SESSION_PROFILE]
    raw = configs["prefix_raw"]
    comp = configs["prefix_compressed"]
    assert raw["hit_rate_probe_rps"] == comp["hit_rate_probe_rps"]
    assert comp["token_hit_rate"] > raw["token_hit_rate"]
    assert comp["knee_rps"] >= raw["knee_rps"]


def test_curves_cover_the_knee(baseline):
    """Committed curves bracket saturation: sub- and super-knee rates."""
    for profile, configs in baseline["profiles"].items():
        for config, row in configs.items():
            curve = row["curve"]
            knee = row["knee_rps"]
            rates = [point["rate_rps"] for point in curve]
            assert min(rates) < knee < max(rates), f"{profile}/{config}"
            for point in curve:
                assert point["goodput_rps"] >= 0
                assert 0 <= point["slo_violation_rate"] <= 1
