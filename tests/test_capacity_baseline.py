"""Structural checks on the committed capacity baseline.

``benchmarks/BENCH_capacity_baseline.json`` is a measured artifact
(blessed by ``bench_capacity.py --update-baseline``), so these tests
read it rather than re-measuring: they pin the *shape* the rest of the
tooling depends on and the headline acceptance property — on the
0.125 GB/s link, the auto-codec stack's knee is strictly above raw
transfer's for every workload profile.  If a re-bless breaks one of
these, the capacity story regressed, not the test.
"""

import json
from pathlib import Path

import pytest

from repro.serving import list_profiles

BASELINE_PATH = (
    Path(__file__).parent.parent
    / "benchmarks" / "BENCH_capacity_baseline.json"
)

CONFIG_NAMES = ("colocated", "disagg", "auto_codec")


@pytest.fixture(scope="module")
def baseline():
    return json.loads(BASELINE_PATH.read_text())


def test_baseline_committed(baseline):
    assert not baseline["config"]["quick"], (
        "the committed baseline must come from a full (bisecting) run,"
        " not --quick"
    )
    assert baseline["config"]["link_gb_per_s"] == pytest.approx(0.125)


def test_every_profile_and_config_present(baseline):
    assert set(baseline["profiles"]) == set(list_profiles())
    for profile, configs in baseline["profiles"].items():
        assert set(configs) == set(CONFIG_NAMES), profile


def test_knees_positive_and_converged(baseline):
    for profile, configs in baseline["profiles"].items():
        for config, row in configs.items():
            assert row["knee_rps"] > 0, f"{profile}/{config}"
            assert row["n_probes"] >= 2, f"{profile}/{config}"


def test_auto_codec_knee_strictly_above_raw_on_starved_link(baseline):
    """The paper's claim, end to end: compression buys admissible rate.

    On the bandwidth-starved link, policy-selected codecs must sustain
    a strictly higher saturating rate than raw BF16 transfer — for
    every workload profile, not just the friendly ones.
    """
    for profile, configs in baseline["profiles"].items():
        raw = configs["disagg"]["knee_rps"]
        auto = configs["auto_codec"]["knee_rps"]
        assert auto > raw, (
            f"{profile}: auto_codec knee {auto} rps not strictly above"
            f" raw-transfer knee {raw} rps"
        )


def test_curves_cover_the_knee(baseline):
    """Committed curves bracket saturation: sub- and super-knee rates."""
    for profile, configs in baseline["profiles"].items():
        for config, row in configs.items():
            curve = row["curve"]
            knee = row["knee_rps"]
            rates = [point["rate_rps"] for point in curve]
            assert min(rates) < knee < max(rates), f"{profile}/{config}"
            for point in curve:
                assert point["goodput_rps"] >= 0
                assert 0 <= point["slo_violation_rate"] <= 1
