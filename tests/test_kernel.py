"""The unified event kernel: primitives, bit-compat, backpressure.

Four contracts:

* **kernel primitives** — stages advance in upstream→downstream order at
  each instant, time never rewinds, ``finish`` hooks always run, and a
  stage that stops making progress is reported instead of spinning;
* **bit-compatibility** — with backpressure off, a shared link,
  whole-prompt pool prefill and exact costs, the interleaved kernel
  reproduces the PR 3 sequential-simulation floats *bit-exactly* across
  {colocated, disaggregated} × {fcfs, priority_aging} × {none, kvcomp}
  wire codecs (goldens recorded from the pre-kernel implementation in
  ``tests/data/kernel_goldens.json``);
* **backpressure** — admission stalls bound decode-pool KV occupancy and
  link queue depth, conserve every request while actively stalling, and
  strand loudly (``CapacityError``) when a watermark can never clear;
* **new topologies** — per-replica links overlap on the wire, the
  chunked prefill pool co-schedules prompts, and ``overlap_fraction``
  hides wire time under prefill.
"""

import json
from pathlib import Path

import pytest

from repro.errors import CapacityError, SchedulingError
from repro.serving.costs import StepBreakdown
from repro.serving.disagg import DisaggregatedCore
from repro.serving.kernel import EventKernel, Stage
from repro.serving.kvcache import KVCacheSpec
from repro.serving.scheduler import Request
from repro.serving.serve import (
    BackpressureConfig,
    DisaggConfig,
    ServingConfig,
    ServingCore,
)

GOLDENS = json.loads(
    (Path(__file__).parent / "data" / "kernel_goldens.json").read_text()
)

#: Tiny KV geometry: 32 bytes/token, 512-byte 16-token blocks.
SPEC = KVCacheSpec(n_layers=1, kv_heads=1, head_dim=8, block_size=16)


class FlatCostModel:
    """Deterministic toy StepCostModel (same arithmetic as the goldens)."""

    def linear_time(self, n_tokens):
        return (n_tokens * 1e-5, 1, 0.0)

    def attention_time(self, batch, ctx, phase):
        return batch * ctx * 1e-7

    def elementwise_time(self, n_tokens):
        return n_tokens * 1e-7

    def decode_step(self, batch, ctx):
        return StepBreakdown(linear_s=1e-3 + batch * 1e-5 + ctx * 1e-7)

    def prefill_step(self, batch, prompt_len):
        return StepBreakdown(linear_s=1e-3 + batch * prompt_len * 1e-6)

    def mixed_step(self, decode_batch, decode_ctx, prefill_seqs,
                   prefill_tokens):
        return StepBreakdown(
            linear_s=(1e-3 + (decode_batch + prefill_tokens) * 1e-6
                      + decode_ctx * 1e-7)
        )


#: The golden trace: contended arrivals, mixed priorities.
TRACE = [
    (24, 12, 0.0, 0), (40, 8, 0.0002, 1), (16, 20, 0.0004, 0),
    (64, 6, 0.0006, 2), (32, 16, 0.0008, 0), (20, 10, 0.005, 1),
    (48, 14, 0.0052, 0), (28, 9, 0.0054, 2), (16, 5, 0.02, 0),
    (56, 11, 0.0202, 1),
]
GOLDEN_KV_BYTES = 10 * SPEC.bytes_per_block


def golden_reqs():
    return [
        Request(i, prompt_len=p, max_new_tokens=o, arrival_s=a, priority=pr)
        for i, (p, o, a, pr) in enumerate(TRACE)
    ]


def reqs(specs):
    return [
        Request(i, prompt_len=p, max_new_tokens=o, arrival_s=a)
        for i, (p, o, a) in enumerate(specs)
    ]


def disagg_core(n_blocks: int, costs=None, config=None, **disagg):
    config = config or ServingConfig(
        mode="disaggregated",
        disagg=DisaggConfig(**disagg) if disagg else DisaggConfig(),
    )
    return DisaggregatedCore(
        costs or FlatCostModel(), SPEC,
        n_blocks * SPEC.bytes_per_block, config,
    )


# ----------------------------------------------------------------------
# Kernel primitives
# ----------------------------------------------------------------------
class _ScriptedStage(Stage):
    """Fires at scripted times; records (time, kernel-now) on advance."""

    def __init__(self, name, times, log):
        self.name = name
        self.times = list(times)
        self.log = log
        self.finished = False

    def next_event_time(self):
        return self.times[0] if self.times else None

    def advance(self, now):
        self.log.append((self.name, self.times.pop(0), now))

    def finish(self):
        self.finished = True


class TestEventKernel:
    def test_events_processed_in_time_order(self):
        log = []
        a = _ScriptedStage("a", [1.0, 3.0], log)
        b = _ScriptedStage("b", [2.0], log)
        kernel = EventKernel([a, b])
        end = kernel.run()
        assert [(name, t) for name, t, _ in log] == [
            ("a", 1.0), ("b", 2.0), ("a", 3.0)
        ]
        assert end == 3.0
        assert a.finished and b.finished

    def test_same_instant_cascade_is_stage_ordered(self):
        log = []
        up = _ScriptedStage("up", [1.0], log)
        down = _ScriptedStage("down", [1.0], log)
        EventKernel([up, down]).run()
        assert [name for name, _, _ in log] == ["up", "down"]

    def test_stale_wakeup_is_clamped_to_monotone_clock(self):
        # A stage reporting an event before the kernel's clock (a
        # backpressure wake-up) is advanced at the clamped `now`, never
        # at its stale time.
        log = []

        class _LateRiser(Stage):
            name = "late"

            def __init__(self):
                self.armed = False
                self.done = False

            def next_event_time(self):
                return 0.5 if self.armed and not self.done else None

            def advance(self, now):
                self.done = True
                log.append(("late", now))

        late = _LateRiser()

        class _Trigger(_ScriptedStage):
            def advance(self, now):
                super().advance(now)
                late.armed = True

        EventKernel([_Trigger("trig", [2.0], log), late]).run()
        assert ("late", 2.0) in log

    def test_finish_hook_failure_propagates(self):
        class _Leftover(_ScriptedStage):
            def finish(self):
                raise CapacityError("work left behind")

        with pytest.raises(CapacityError):
            EventKernel([_Leftover("x", [], [])]).run()

    def test_stuck_stage_raises_instead_of_spinning(self):
        class _Spinner(Stage):
            name = "spin"

            def next_event_time(self):
                return 1.0

            def advance(self, now):
                pass  # never retires its event

        import repro.serving.kernel as kernel_mod
        old = kernel_mod._MAX_STALLED_ITERATIONS
        kernel_mod._MAX_STALLED_ITERATIONS = 50
        try:
            with pytest.raises(SchedulingError):
                EventKernel([_Spinner()]).run()
        finally:
            kernel_mod._MAX_STALLED_ITERATIONS = old

    def test_needs_at_least_one_stage(self):
        with pytest.raises(SchedulingError):
            EventKernel([])


# ----------------------------------------------------------------------
# Bit-compatibility with the PR 3 sequential simulation
# ----------------------------------------------------------------------
class TestBitCompatMatrix:
    """The kernel reproduces the recorded pre-kernel floats exactly.

    ``tests/data/kernel_goldens.json`` was captured from the PR 3
    sequential implementation (stage-by-stage disaggregated simulation,
    hand-rolled colocated loops) on the deterministic FlatCostModel
    trace above.  Equality below is ``==`` on floats — bit-exact, not
    approximate.
    """

    @pytest.mark.parametrize("key", sorted(GOLDENS))
    def test_reproduces_sequential_floats(self, key):
        mode, policy, codec = key.split("/")
        prefill_mode = "group" if mode == "colocated-group" else "chunked"
        if mode.startswith("colocated"):
            config = ServingConfig(policy=policy, prefill_mode=prefill_mode)
            core = ServingCore(
                FlatCostModel(), SPEC, GOLDEN_KV_BYTES, config
            )
        else:
            config = ServingConfig(
                policy=policy, prefill_mode=prefill_mode,
                mode="disaggregated",
                disagg=DisaggConfig(
                    prefill_replicas=1, decode_replicas=2,
                    link_gb_per_s=1e-6, link_latency_s=1e-3,
                    transfer_codec=codec,
                ),
            )
            core = DisaggregatedCore(
                FlatCostModel(), SPEC, GOLDEN_KV_BYTES, config
            )
        result = core.serve(golden_reqs())
        want = GOLDENS[key]
        assert result.makespan_s == want["makespan_s"]
        assert result.n_steps == want["n_steps"]
        assert result.tokens_generated == want["tokens_generated"]
        assert result.peak_running == want["peak_running"]
        assert result.n_preemptions == want["n_preemptions"]
        got = [
            [t.request_id, t.first_token_s, t.finish_s]
            for t in result.timings
        ]
        assert got == want["timings"]


# ----------------------------------------------------------------------
# Decode→prefill backpressure
# ----------------------------------------------------------------------
#: Eight identical prompts landing at once on a small decode pool.
BP_TRACE = [(64, 30, 0.0)] * 8


class TestBackpressure:
    def test_conserves_requests_while_actively_stalling(self):
        """No request lost or double-transferred when admission stalls."""
        result = disagg_core(
            16, backpressure=BackpressureConfig(min_free_kv_frac=0.25)
        ).serve(reqs(BP_TRACE))
        assert result.pool("prefill").stall_s > 0.0  # the stall was real
        assert result.n_requests == len(BP_TRACE)
        assert result.tokens_generated == sum(o for _, o, _ in BP_TRACE)
        assert result.transfer.n_transfers == len(BP_TRACE)
        transferred = [r.request_id for r in result.transfer.records]
        assert sorted(transferred) == list(range(len(BP_TRACE)))
        assert len(set(transferred)) == len(BP_TRACE)
        for t in result.timings:
            assert t.arrival_s <= t.first_token_s <= t.finish_s

    def test_kv_watermark_bounds_occupancy_vs_feedback_free(self):
        baseline = disagg_core(16).serve(reqs(BP_TRACE))
        gated = disagg_core(
            16, backpressure=BackpressureConfig(min_free_kv_frac=0.25)
        ).serve(reqs(BP_TRACE))
        assert baseline.pool("decode").peak_kv_frac == 1.0
        assert baseline.n_preemptions > 0
        # Admission-time projection bounds the landing occupancy; decode
        # growth on 64→94-token requests adds at most 2 blocks/request.
        assert gated.pool("decode").peak_kv_frac < 1.0
        assert gated.n_preemptions == 0
        assert gated.pool("decode").peak_kv_frac <= 0.75 + 0.13

    def test_link_queue_watermark_bounds_queue_depth(self):
        baseline = disagg_core(64, link_gb_per_s=1e-6).serve(
            reqs(BP_TRACE)
        )
        gated = disagg_core(
            64, link_gb_per_s=1e-6,
            backpressure=BackpressureConfig(
                min_free_kv_frac=0.0, max_link_queue=2
            ),
        ).serve(reqs(BP_TRACE))
        assert baseline.transfer.peak_queue_depth > 2
        assert gated.transfer.peak_queue_depth <= 2
        assert gated.pool("prefill").stall_s > 0.0
        assert gated.n_requests == len(BP_TRACE)

    def test_impossible_watermark_strands_loudly(self):
        # A request needing 4 of 8 blocks can never leave >=90% free:
        # silent drop would fake a clean run, so the kernel raises.
        with pytest.raises(CapacityError):
            disagg_core(
                8, backpressure=BackpressureConfig(min_free_kv_frac=0.9)
            ).serve(reqs([(64, 4, 0.0)]))

    def test_backpressure_applies_to_chunked_prefill_pool(self):
        # The chunked pool admits to the watermark boundary in one
        # instant (no prefill serialization between gate checks), so a
        # tighter watermark than the group test's is needed to absorb
        # the admitted requests' decode growth: 0.5 of 16 blocks admits
        # two 4-block prompts, which grow to 12 blocks — peak 0.75,
        # no preemption.
        result = disagg_core(
            16, prefill_mode="chunked",
            backpressure=BackpressureConfig(min_free_kv_frac=0.5),
        ).serve(reqs(BP_TRACE))
        baseline = disagg_core(16, prefill_mode="chunked").serve(
            reqs(BP_TRACE)
        )
        assert result.n_requests == len(BP_TRACE)
        assert result.pool("prefill").stall_s > 0.0
        assert result.pool("decode").peak_kv_frac < 1.0
        assert result.n_preemptions == 0
        assert baseline.pool("decode").peak_kv_frac == 1.0

    @pytest.mark.parametrize("kwargs", [
        {"min_free_kv_frac": -0.1},
        {"min_free_kv_frac": 1.5},
        {"max_link_queue": 0},
    ])
    def test_bad_watermarks_rejected(self, kwargs):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            BackpressureConfig(**kwargs)


# ----------------------------------------------------------------------
# Per-replica transfer links
# ----------------------------------------------------------------------
class TestPerReplicaLinks:
    def test_transfers_overlap_across_links(self):
        shared = disagg_core(
            64, decode_replicas=2, link_gb_per_s=1e-6
        ).serve(reqs(BP_TRACE))
        dedicated = disagg_core(
            64, decode_replicas=2, link_gb_per_s=1e-6,
            link_topology="per_replica",
        ).serve(reqs(BP_TRACE))
        assert shared.transfer.n_links == 1
        assert dedicated.transfer.n_links == 2
        # Two channels at the same bandwidth drain the same bytes in
        # roughly half the wall time; the shared FIFO serializes.
        assert dedicated.makespan_s < shared.makespan_s
        assert dedicated.tokens_generated == shared.tokens_generated
        records = sorted(
            dedicated.transfer.records, key=lambda r: r.start_s
        )
        overlapped = any(
            later.start_s < earlier.done_s - 1e-12
            for earlier, later in zip(records, records[1:])
        )
        assert overlapped

    def test_each_link_is_fifo(self):
        result = disagg_core(
            64, decode_replicas=2, link_gb_per_s=1e-6,
            link_topology="per_replica",
        ).serve(reqs(BP_TRACE))
        by_link: dict[int, list] = {}
        for rec in result.transfer.records:
            assert rec.ready_s <= rec.start_s <= rec.done_s
            by_link.setdefault(rec.link, []).append(rec)
        assert sorted(by_link) == [0, 1]
        for records in by_link.values():
            # Within a channel: serve order is (ready, id), transfers
            # never overlap, and no transfer starts before the channel
            # freed from the previous one.
            ordered = sorted(
                records, key=lambda r: (r.ready_s, r.request_id)
            )
            for earlier, later in zip(ordered, ordered[1:]):
                assert later.start_s >= earlier.done_s - 1e-12

    def test_bad_topology_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            DisaggConfig(link_topology="mesh")


# ----------------------------------------------------------------------
# Chunked prefill inside the prefill pool
# ----------------------------------------------------------------------
class TestChunkedPrefillPool:
    def test_conservation_and_mode_report(self):
        group = disagg_core(64).serve(reqs(BP_TRACE))
        chunked = disagg_core(64, prefill_mode="chunked").serve(
            reqs(BP_TRACE)
        )
        assert group.prefill_mode == "group"
        assert chunked.prefill_mode == "chunked"
        assert chunked.n_requests == len(BP_TRACE)
        assert chunked.tokens_generated == group.tokens_generated
        assert chunked.transfer.n_transfers == len(BP_TRACE)
        for t in chunked.timings:
            assert t.arrival_s <= t.first_token_s <= t.finish_s

    def test_short_prompt_not_serialized_behind_giant_prompt(self):
        # Group mode runs whole prompts one at a time per replica, so a
        # short prompt arriving alongside a 6000-token prompt waits out
        # the entire pass before its own; the chunked pool co-schedules
        # both under max_batched_tokens (8192), so the short prompt's
        # chunk rides the same iteration as the giant one's and its
        # first token lands a full short-prefill pass earlier.
        def trace():
            return reqs([(6000, 4, 0.0), (16, 4, 0.0)])

        group = disagg_core(1024).serve(trace())
        chunked = disagg_core(1024, prefill_mode="chunked").serve(trace())
        group_ttft = {t.request_id: t.ttft_s for t in group.timings}
        chunked_ttft = {t.request_id: t.ttft_s for t in chunked.timings}
        assert chunked_ttft[1] < group_ttft[1]

    def test_oversized_prompt_strands_loudly(self):
        # 1024-token prompt KV can never fit an 8-block (128-token)
        # chunked prefill replica.
        with pytest.raises(CapacityError):
            disagg_core(8, prefill_mode="chunked").serve(
                reqs([(1024, 4, 0.0)])
            )

    def test_bad_prefill_mode_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            DisaggConfig(prefill_mode="speculative")


# ----------------------------------------------------------------------
# Analytic prefill/transfer overlap
# ----------------------------------------------------------------------
class TestOverlapFraction:
    def test_wire_time_scaled_by_hidden_fraction(self):
        plain = disagg_core(
            64, link_gb_per_s=1e-6, link_latency_s=0.01
        ).serve(reqs(BP_TRACE))
        hidden = disagg_core(
            64, link_gb_per_s=1e-6, link_latency_s=0.01,
            overlap_fraction=0.75,
        ).serve(reqs(BP_TRACE))
        plain_serial = plain.transfer.time.mean_s - 0.01
        hidden_serial = hidden.transfer.time.mean_s - 0.01
        assert hidden_serial == pytest.approx(plain_serial * 0.25)
        assert hidden.makespan_s < plain.makespan_s

    def test_full_overlap_leaves_only_latency(self):
        result = disagg_core(
            64, link_gb_per_s=1e-6, link_latency_s=0.125,
            overlap_fraction=1.0,
        ).serve(reqs(BP_TRACE))
        for rec in result.transfer.records:
            assert rec.wire_s == pytest.approx(0.125)

    def test_bad_fraction_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            DisaggConfig(overlap_fraction=1.5)
