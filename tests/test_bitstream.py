"""Tests for the MSB-first bit packing / reading layer."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.codecs.bitstream import MAX_CODE_BITS, BitReader, pack_bits
from repro.errors import CodecError


class TestPackBits:
    def test_single_byte_pattern(self):
        # 0b101 then 0b11 then 0b0 -> 10111 0... = 0xB8.
        buf, total = pack_bits(np.array([0b101, 0b11, 0b0]),
                               np.array([3, 2, 1]))
        assert total == 6
        assert buf[0] == 0b10111000

    def test_cross_byte(self):
        buf, total = pack_bits(np.array([0xAB, 0xCD]), np.array([8, 8]))
        assert total == 16
        assert buf[0] == 0xAB and buf[1] == 0xCD

    def test_empty(self):
        buf, total = pack_bits(np.array([], dtype=np.uint64),
                               np.array([], dtype=np.int64))
        assert total == 0
        assert buf.size >= 4

    def test_length_bounds(self):
        with pytest.raises(CodecError):
            pack_bits(np.array([1]), np.array([0]))
        with pytest.raises(CodecError):
            pack_bits(np.array([1]), np.array([MAX_CODE_BITS + 1]))

    def test_code_too_wide(self):
        with pytest.raises(CodecError):
            pack_bits(np.array([4]), np.array([2]))

    def test_shape_mismatch(self):
        with pytest.raises(CodecError):
            pack_bits(np.array([1, 2]), np.array([1]))


class TestBitReader:
    def test_peek_known(self):
        buf, total = pack_bits(np.array([0b1011]), np.array([4]))
        reader = BitReader(buf, total)
        assert reader.peek(0, 4) == 0b1011
        assert reader.peek(1, 3) == 0b011

    def test_peek_vector_matches_scalar(self):
        codes = np.arange(1, 40) % 7 + 1
        lengths = np.full(codes.size, 3)
        buf, total = pack_bits(codes, lengths)
        reader = BitReader(buf, total)
        offsets = np.arange(0, total - 3, 3)
        vec = reader.peek_vector(offsets, 3)
        for off, val in zip(offsets, vec):
            assert reader.peek(int(off), 3) == int(val)

    def test_short_buffer_rejected(self):
        with pytest.raises(CodecError):
            BitReader(np.zeros(1, dtype=np.uint8), 100)

    def test_bad_width(self):
        buf, total = pack_bits(np.array([1]), np.array([1]))
        reader = BitReader(buf, total)
        with pytest.raises(CodecError):
            reader.peek_vector(np.array([0]), 17)

    def test_buffer_read_only(self):
        buf, total = pack_bits(np.array([1]), np.array([1]))
        reader = BitReader(buf, total)
        with pytest.raises(ValueError):
            reader.buffer[0] = 1


class TestRoundTripProperty:
    @given(
        st.lists(
            st.tuples(st.integers(1, MAX_CODE_BITS)),
            min_size=1, max_size=200,
        ),
        st.randoms(use_true_random=False),
    )
    def test_pack_then_peek_recovers_codes(self, lens, rnd):
        lengths = np.array([l[0] for l in lens], dtype=np.int64)
        codes = np.array(
            [rnd.randrange(1 << l) for l in lengths], dtype=np.uint64
        )
        buf, total = pack_bits(codes, lengths)
        assert total == lengths.sum()
        reader = BitReader(buf, total)
        offset = 0
        for code, length in zip(codes, lengths):
            peeked = 0
            # Read in <=16-bit chunks (peek limit) and reassemble.
            remaining = int(length)
            pos = offset
            while remaining > 0:
                take = min(16, remaining)
                peeked = (peeked << take) | reader.peek(pos, take)
                pos += take
                remaining -= take
            assert peeked == int(code)
            offset += int(length)
