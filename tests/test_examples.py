"""Every example script must run cleanly and print its key markers."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

CASES = {
    "quickstart.py": ["bit-exact", "tok/s", "memory plan"],
    "compress_llm.py": ["Phase I", "Phase II", "GiB"],
    "serve_comparison.py": ["zipserv", "vllm", "Decode-step breakdown"],
    "capacity_planner.py": ["zipserv deployments", "does not fit"],
    "kernel_explorer.py": ["bound-by", "stage-aware", "decoupled"],
    "extensions_tour.py": [
        "KV-cache compression", "delta snapshots", "INT8",
    ],
}


@pytest.mark.parametrize("script", sorted(CASES))
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    for marker in CASES[script]:
        assert marker in proc.stdout, (
            f"{script}: marker {marker!r} missing from output"
        )


def test_experiments_cli_list():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.experiments", "--list"],
        capture_output=True, text=True, timeout=120,
    )
    assert proc.returncode == 0
    assert "fig11" in proc.stdout
    assert "tab_pipeline" in proc.stdout


def test_experiments_cli_single():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.experiments", "fig05", "--quick"],
        capture_output=True, text=True, timeout=120,
    )
    assert proc.returncode == 0
    assert "ci_degradation_n8" in proc.stdout
    assert "paper=" in proc.stdout
