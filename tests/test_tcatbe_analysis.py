"""Tests for exponent-window selection and the codeword analysis (§3.1/§4.2)."""

import numpy as np
import pytest

from repro.bf16 import gaussian_bf16_sample
from repro.errors import ShapeError
from repro.tcatbe.analysis import (
    average_bits,
    expected_bits_for_codeword,
    exponent_entropy,
    exponent_histogram,
    select_window,
    theoretical_ratio,
    top_k_contiguous,
    window_coverage,
)


def hist_with(values: dict[int, int]) -> np.ndarray:
    h = np.zeros(256, dtype=np.int64)
    for e, c in values.items():
        h[e] = c
    return h


class TestSelectWindow:
    def test_obvious_window(self):
        h = hist_with({120: 10, 121: 50, 122: 100, 123: 50, 124: 10})
        w = select_window(h, size=3)
        assert (w.start, w.stop) == (121, 124)
        assert w.base_exp == 120
        assert w.coverage == pytest.approx(200 / 220)

    def test_window_size_7_default(self):
        h = hist_with({e: 1 for e in range(110, 130)})
        w = select_window(h)
        assert w.size == 7
        assert w.coverage == pytest.approx(7 / 20)

    def test_exponent_zero_excluded(self):
        # Mass at exponent 0 cannot be encoded (base_exp would be -1).
        h = hist_with({0: 1000, 1: 1, 8: 1})
        w = select_window(h, size=3)
        assert w.start >= 1

    def test_empty_histogram(self):
        w = select_window(np.zeros(256, dtype=np.int64))
        assert w.coverage == 0.0

    def test_top_edge(self):
        h = hist_with({250: 5, 251: 5, 252: 5, 253: 5, 254: 5, 255: 5})
        w = select_window(h, size=7)
        assert w.stop <= 256

    def test_bad_inputs(self):
        with pytest.raises(ShapeError):
            select_window(np.zeros(10, dtype=np.int64))
        with pytest.raises(ValueError):
            select_window(np.zeros(256, dtype=np.int64), size=0)

    def test_window_coverage_helper(self):
        h = hist_with({100: 10, 101: 30})
        w = select_window(h, size=2)
        assert window_coverage(h, w) == pytest.approx(1.0)


class TestHistogram:
    def test_counts(self):
        bits = np.array([120 << 7, 120 << 7, 121 << 7], dtype=np.uint16)
        h = exponent_histogram(bits)
        assert h[120] == 2 and h[121] == 1 and h.sum() == 3

    def test_rejects_non_u16(self):
        with pytest.raises(ShapeError):
            exponent_histogram(np.zeros(4, dtype=np.float32))

    def test_gaussian_skew(self):
        h = exponent_histogram(gaussian_bf16_sample(100_000, 0.02, seed=1))
        w = select_window(h)
        # §3.1: a 7-window covers ~97% of Gaussian LLM weights.
        assert w.coverage > 0.95


class TestContiguity:
    def test_contiguous(self):
        assert top_k_contiguous(hist_with({5: 9, 6: 8, 7: 7, 8: 1}), 3)

    def test_not_contiguous(self):
        assert not top_k_contiguous(hist_with({5: 9, 7: 8, 9: 7}), 3)

    def test_fewer_symbols_than_k(self):
        assert top_k_contiguous(hist_with({5: 9, 6: 1}), 7)

    def test_empty(self):
        assert top_k_contiguous(np.zeros(256, dtype=np.int64), 7)


class TestEntropyAndBits:
    def test_entropy_uniform(self):
        h = np.ones(256, dtype=np.int64)
        assert exponent_entropy(h) == pytest.approx(8.0)

    def test_entropy_constant(self):
        assert exponent_entropy(hist_with({7: 99})) == 0.0

    def test_theoretical_ratio(self):
        # The paper: H ~ 2.6 bits -> ratio ~ 1.51 (= 16 / 10.6).
        assert theoretical_ratio(2.6) == pytest.approx(16 / 10.6, rel=1e-3)

    def test_average_bits_formula(self):
        # AverageBits(n) = r(n+8) + (1-r)(n+16)
        assert average_bits(3, 1.0) == pytest.approx(11.0)
        assert average_bits(3, 0.0) == pytest.approx(19.0)
        assert average_bits(3, 0.96) == pytest.approx(11.32)

    def test_average_bits_validation(self):
        with pytest.raises(ValueError):
            average_bits(0, 0.5)
        with pytest.raises(ValueError):
            average_bits(3, 1.5)

    def test_three_bit_beats_neighbours_on_gaussian(self):
        h = exponent_histogram(gaussian_bf16_sample(200_000, 0.015, seed=2))
        bits = {n: expected_bits_for_codeword(h, n) for n in (2, 3, 4)}
        assert bits[3] < bits[2]
        assert bits[3] < bits[4]
        assert 10.8 < bits[3] < 11.8  # paper: ~11.3
