"""Tests for the 1-D Vector-TBE format (KV/checkpoint substrate)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bf16 import gaussian_bf16_matrix, gaussian_bf16_sample
from repro.errors import FormatError
from repro.tcatbe.vector import VecTbe, compress_vector, decompress_vector


class TestRoundTrip:
    """Format-level checks only — the codec-agnostic round-trip matrix
    (edge shapes, all-outlier input, group boundaries) lives in
    ``tests/test_compression_registry.py``."""

    @pytest.mark.parametrize("n", [63, 64, 65])
    def test_group_boundaries_validate(self, n):
        v = gaussian_bf16_sample(n, sigma=0.05, seed=n)
        blob = compress_vector(v)
        blob.validate()
        assert np.array_equal(decompress_vector(blob), v)

    def test_2d_input_flattened(self):
        m = gaussian_bf16_matrix(7, 33, sigma=0.05, seed=3)
        blob = compress_vector(m)
        assert np.array_equal(decompress_vector(blob), m.ravel())

    def test_all_zero_coverage(self):
        v = np.zeros(100, dtype=np.uint16)
        blob = compress_vector(v)
        assert np.array_equal(decompress_vector(blob), v)
        assert blob.coverage == 0.0

    def test_dtype_rejected(self):
        with pytest.raises(FormatError):
            compress_vector(np.zeros(10, dtype=np.float32))

    @given(st.integers(1, 3000))
    def test_roundtrip_property(self, n):
        v = gaussian_bf16_sample(n, sigma=0.03, seed=n % 17)
        assert np.array_equal(decompress_vector(compress_vector(v)), v)


class TestAccounting:
    def test_ratio_band(self):
        v = gaussian_bf16_sample(100_000, sigma=0.05, seed=4)
        blob = compress_vector(v)
        assert 1.35 < blob.ratio < 1.48
        assert blob.coverage > 0.93

    def test_padding_not_counted_as_data(self):
        v = gaussian_bf16_sample(65, sigma=0.05, seed=5)
        blob = compress_vector(v)
        assert blob.length == 65
        assert blob.high.size + blob.low.size == 65

    def test_validate_catches_corruption(self):
        v = gaussian_bf16_sample(128, sigma=0.05, seed=6)
        blob = compress_vector(v)
        bad = VecTbe(
            length=blob.length, base_exp=blob.base_exp,
            window_size=blob.window_size, bitmaps=blob.bitmaps,
            high=blob.high[:-1], low=blob.low,
            high_starts=blob.high_starts, low_starts=blob.low_starts,
        )
        with pytest.raises(FormatError):
            bad.validate()

    def test_decompress_checks_sizes(self):
        v = gaussian_bf16_sample(128, sigma=0.05, seed=7)
        blob = compress_vector(v)
        bad = VecTbe(
            length=blob.length, base_exp=blob.base_exp,
            window_size=blob.window_size, bitmaps=blob.bitmaps,
            high=blob.high[:-1], low=blob.low,
            high_starts=blob.high_starts, low_starts=blob.low_starts,
        )
        with pytest.raises(FormatError):
            decompress_vector(bad)
