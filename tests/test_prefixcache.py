"""Tests for the two-tier prefix cache (`repro.serving.prefixcache`).

The counter invariants pinned here are the ones the serving-level
session tests build on: hits never exceed what was offered, every
lookup is a hit or a miss, and bytes are conserved across hot→cold
demotion by exactly the cold codec ratio.
"""

import numpy as np
import pytest

from repro.errors import ConfigError, UnknownSpecError
from repro.serving.kvcache import KVCacheSpec
from repro.serving.prefixcache import (
    PrefixCache,
    PrefixCacheConfig,
    PrefixCacheStats,
    cold_hit_seconds_per_token,
)

#: Tiny geometry: 64 B/token, 1024 B/block (block_size 16).
SPEC = KVCacheSpec(n_layers=2, kv_heads=2, head_dim=4, block_size=16)
BLOCK = SPEC.block_size
BPB = SPEC.bytes_per_block


def make_cache(blocks_hot=4, blocks_cold=4, cold_ratio=1.0, cold_s=0.0):
    total = (blocks_hot + blocks_cold) * BPB
    return PrefixCache(
        SPEC, total,
        hot_frac=blocks_hot / (blocks_hot + blocks_cold),
        cold_ratio=cold_ratio,
        cold_hit_s_per_token=cold_s,
    )


class TestConfig:
    def test_defaults_valid(self):
        cfg = PrefixCacheConfig()
        assert 0.0 < cfg.capacity_frac < 1.0
        assert cfg.codec == "auto"

    @pytest.mark.parametrize("frac", [0.0, 1.0, -0.1, 1.5])
    def test_capacity_frac_bounds(self, frac):
        with pytest.raises(ConfigError):
            PrefixCacheConfig(capacity_frac=frac)

    @pytest.mark.parametrize("frac", [-0.01, 1.01])
    def test_hot_frac_bounds(self, frac):
        with pytest.raises(ConfigError):
            PrefixCacheConfig(hot_frac=frac)

    def test_unknown_codec_rejected(self):
        with pytest.raises(UnknownSpecError):
            PrefixCacheConfig(codec="no_such_codec")

    def test_none_codec_means_raw_cold_tier(self):
        assert PrefixCacheConfig(codec=None).codec is None

    def test_cache_rejects_nonpositive_capacity(self):
        with pytest.raises(ConfigError):
            PrefixCache(SPEC, 0.0)

    def test_cache_rejects_sub_unit_cold_ratio(self):
        with pytest.raises(ConfigError):
            PrefixCache(SPEC, BPB, cold_ratio=0.5)


class TestLookupStore:
    def test_empty_cache_misses(self):
        cache = make_cache()
        hit, delay = cache.lookup(0, 100)
        assert (hit, delay) == (0, 0.0)
        assert cache.n_misses == 1 and cache.n_hits == 0

    def test_hit_is_block_floored_min_of_cached_and_offered(self):
        cache = make_cache(blocks_hot=64, blocks_cold=64)
        cache.store(7, 3 * BLOCK + 5)
        hit, _ = cache.lookup(7, 10 * BLOCK)
        assert hit == 3 * BLOCK  # cached side floors
        hit, _ = cache.lookup(7, BLOCK + 3)
        assert hit == BLOCK  # offered side floors

    def test_zero_prefix_offer_is_a_miss(self):
        cache = make_cache()
        cache.store(1, 2 * BLOCK)
        hit, _ = cache.lookup(1, 0)
        assert hit == 0
        assert cache.n_misses == 1

    def test_store_never_truncates(self):
        cache = make_cache(blocks_hot=64, blocks_cold=64)
        cache.store(1, 4 * BLOCK)
        cache.store(1, 2 * BLOCK)
        hit, _ = cache.lookup(1, 8 * BLOCK)
        assert hit == 4 * BLOCK

    def test_hot_hit_has_no_delay(self):
        cache = make_cache(cold_s=1.0)
        cache.store(1, BLOCK)
        hit, delay = cache.lookup(1, BLOCK)
        assert hit == BLOCK and delay == 0.0


class TestTiers:
    def test_demotion_conserves_bytes_by_exact_ratio(self):
        ratio = 2.5
        cache = make_cache(blocks_hot=2, blocks_cold=8, cold_ratio=ratio)
        cache.store(1, 2 * BLOCK)  # fills the hot tier exactly
        assert cache.bytes_hot == 2 * BPB and cache.bytes_cold == 0.0
        cache.store(2, 2 * BLOCK)  # overflows: entry 1 demotes
        assert cache.n_demotions == 1
        assert cache.bytes_hot == 2 * BPB
        assert cache.bytes_cold == pytest.approx(2 * BPB / ratio)

    def test_lru_demotes_the_oldest(self):
        cache = make_cache(blocks_hot=2, blocks_cold=8)
        cache.store(1, 2 * BLOCK)
        cache.store(2, 2 * BLOCK)  # demotes 1 (older)
        stats = cache.stats()
        assert stats.n_demotions == 1
        # 2 still hits hot (no delay even with a cold charge set).
        cache.cold_hit_s_per_token = 1.0
        _, delay = cache.lookup(2, 2 * BLOCK)
        assert delay == 0.0

    def test_cold_hit_pays_delay_and_promotes(self):
        cache = make_cache(blocks_hot=2, blocks_cold=8, cold_s=0.25)
        cache.store(1, 2 * BLOCK)
        cache.store(2, 2 * BLOCK)  # 1 now cold
        hit, delay = cache.lookup(1, 2 * BLOCK)
        assert hit == 2 * BLOCK
        assert delay == pytest.approx(hit * 0.25)
        # Promotion put 1 back hot, demoting 2.
        assert cache.stats().n_demotions == 2
        _, delay2 = cache.lookup(1, 2 * BLOCK)
        assert delay2 == 0.0

    def test_eviction_when_cold_overflows(self):
        cache = make_cache(blocks_hot=2, blocks_cold=2)
        for key in range(4):
            cache.store(key, 2 * BLOCK)
        # hot holds one 2-block entry, cold one; two were evicted.
        stats = cache.stats()
        assert stats.n_evictions == 2
        assert stats.n_entries_hot + stats.n_entries_cold == 2
        assert cache.bytes_hot <= cache.hot_capacity_bytes
        assert cache.bytes_cold <= cache.cold_capacity_bytes

    def test_compressed_cold_tier_holds_more_entries(self):
        raw = make_cache(blocks_hot=2, blocks_cold=4, cold_ratio=1.0)
        comp = make_cache(blocks_hot=2, blocks_cold=4, cold_ratio=2.0)
        for key in range(6):
            raw.store(key, 2 * BLOCK)
            comp.store(key, 2 * BLOCK)
        assert comp.n_entries > raw.n_entries
        assert comp.n_evictions < raw.n_evictions


class TestCounterInvariants:
    def test_randomised_counter_invariants(self):
        rng = np.random.default_rng(11)
        cache = make_cache(blocks_hot=3, blocks_cold=3, cold_ratio=1.7,
                           cold_s=0.01)
        for _ in range(500):
            key = int(rng.integers(0, 12))
            tokens = int(rng.integers(1, 6)) * BLOCK
            if rng.random() < 0.5:
                cache.lookup(key, tokens)
            else:
                cache.store(key, tokens)
            assert cache.n_hits + cache.n_misses == cache.n_lookups
            assert cache.hit_tokens <= cache.offered_prefix_tokens
            assert cache.bytes_hot <= cache.hot_capacity_bytes + 1e-9
            assert cache.bytes_cold <= cache.cold_capacity_bytes + 1e-9
            # Gauges always reconcile against the entry table.
            stats = cache.stats()
            hot = sum(
                cache._tier_bytes(e)
                for e in cache._entries.values() if e.tier == "hot"
            )
            cold = sum(
                cache._tier_bytes(e)
                for e in cache._entries.values() if e.tier == "cold"
            )
            assert stats.bytes_hot == pytest.approx(hot)
            assert stats.bytes_cold == pytest.approx(cold)

    def test_stats_rates(self):
        cache = make_cache()
        cache.store(1, 2 * BLOCK)
        cache.lookup(1, 2 * BLOCK)
        cache.lookup(2, 2 * BLOCK)
        stats = cache.stats()
        assert stats.request_hit_rate == pytest.approx(0.5)
        assert stats.token_hit_rate == pytest.approx(0.5)

    def test_empty_stats_rates_are_zero(self):
        stats = PrefixCacheStats()
        assert stats.token_hit_rate == 0.0
        assert stats.request_hit_rate == 0.0


class TestMerge:
    def test_merge_sums_counters(self):
        a = PrefixCacheStats(n_lookups=3, n_hits=1, n_misses=2,
                             hit_tokens=16, offered_prefix_tokens=64,
                             bytes_hot=10.0)
        b = PrefixCacheStats(n_lookups=1, n_hits=1, n_misses=0,
                             hit_tokens=32, offered_prefix_tokens=32,
                             bytes_cold=5.0)
        m = PrefixCacheStats.merge([a, b, None])
        assert m.n_lookups == 4 and m.n_hits == 2 and m.n_misses == 2
        assert m.hit_tokens == 48 and m.offered_prefix_tokens == 96
        assert m.bytes_hot == 10.0 and m.bytes_cold == 5.0
        assert m.token_hit_rate == pytest.approx(0.5)

    def test_merge_of_nothing_is_zero(self):
        assert PrefixCacheStats.merge([]) == PrefixCacheStats()


class TestColdHitPricing:
    def test_identity_codec_is_free(self):
        assert cold_hit_seconds_per_token(SPEC, "none", 1.0) == 0.0

    def test_real_codec_costs_time(self):
        s = cold_hit_seconds_per_token(SPEC, "vector_tbe", 1.6)
        assert s > 0.0

    def test_higher_ratio_streams_fewer_bytes(self):
        lo = cold_hit_seconds_per_token(SPEC, "vector_tbe", 1.2)
        hi = cold_hit_seconds_per_token(SPEC, "vector_tbe", 2.4)
        assert hi < lo

    def test_gpu_rates_change_the_price(self):
        from repro.gpu.specs import get_gpu
        default = cold_hit_seconds_per_token(SPEC, "vector_tbe", 1.6)
        priced = cold_hit_seconds_per_token(
            SPEC, "vector_tbe", 1.6, gpu=get_gpu("rtx4090")
        )
        assert priced != default
        assert priced > 0.0
