"""Exhaustive sanity sweep: every model's layers x every GPU x both kernels.

These tests don't pin exact numbers; they assert the invariants that must
hold for *any* shape the model zoo can produce — the kind of coverage that
catches config-table and saturation-model regressions.
"""

import pytest

from repro.gpu.specs import GPUS, get_gpu
from repro.kernels.gemm import cublas_gemm
from repro.kernels.pipeline import zipserv_decoupled
from repro.kernels.zipgemm import zipgemm
from repro.serving.models import MODELS, get_model
from repro.serving.weights import estimate_layer_compression, layer_sigma

ALL_MODELS = sorted(MODELS)
ALL_GPUS = sorted(GPUS)


def _layers(model_name):
    return get_model(model_name).linear_layers()


@pytest.mark.parametrize("model_name", ALL_MODELS)
@pytest.mark.parametrize("gpu_name", ["rtx4090", "l40s"])
def test_decode_invariants(model_name, gpu_name):
    """Decode-shape invariants over the full zoo on the Ada GPUs."""
    gpu = get_gpu(gpu_name)
    for layer in _layers(model_name):
        comp = estimate_layer_compression(
            layer.m, layer.k, layer_sigma(layer.kind, layer.m, layer.k),
            "tcatbe",
        )
        cb = cublas_gemm(gpu, layer.m, layer.k, 32)
        zg = zipgemm(gpu, layer.m, layer.k, 32, comp)

        # Times are positive and finite.
        assert 0 < cb.time_s < 1.0
        assert 0 < zg.time_s < 1.0

        # The fused kernel always reads fewer weight bytes.
        assert zg.traffic.dram_read < cb.traffic.dram_read

        # The speedup stays in a physical band: never better than the
        # compression ratio x efficiency headroom, never catastrophic.
        speedup = zg.speedup_over(cb)
        assert 0.5 < speedup < comp.ratio * 1.15, (
            f"{model_name}/{layer.name} on {gpu_name}: {speedup:.2f}"
        )

        # FLOPs identical — same mathematical operation.
        assert zg.flops == cb.flops


@pytest.mark.parametrize("gpu_name", ALL_GPUS)
def test_every_gpu_profiles_cleanly(gpu_name):
    """All five paper GPUs run the representative shapes."""
    gpu = get_gpu(gpu_name)
    for m, k in ((28672, 4096), (4096, 14336), (152064, 8192)):
        cb = cublas_gemm(gpu, m, k, 32)
        zg = zipgemm(gpu, m, k, 32)
        assert cb.time_s > 0 and zg.time_s > 0
        decoupled = zipserv_decoupled(gpu, m, k, 32)
        assert decoupled.time_s > zg.time_s  # fused beats decoupled at decode


@pytest.mark.parametrize("model_name", ALL_MODELS)
def test_compression_estimates_whole_zoo(model_name):
    """Every layer of every model lands in the paper's ratio band."""
    for layer in _layers(model_name):
        comp = estimate_layer_compression(
            layer.m, layer.k, layer_sigma(layer.kind, layer.m, layer.k),
            "tcatbe",
        )
        assert 1.35 < comp.ratio < 1.48, f"{model_name}/{layer.name}"
        assert comp.coverage > 0.93


@pytest.mark.parametrize("n", [1, 7, 16, 33, 100, 129, 1000, 8192])
def test_n_continuity(n):
    """Kernel times vary smoothly (no pathological cliffs) across N."""
    gpu = get_gpu("rtx4090")
    t = zipgemm(gpu, 28672, 4096, n).time_s
    t_next = zipgemm(gpu, 28672, 4096, n + 1).time_s
    assert t_next < t * 1.6  # one extra column never doubles the time
    assert t_next >= t * 0.75
