"""Tests for static-batch and continuous-batching schedulers."""

import pytest

from repro.errors import SchedulingError
from repro.serving.kvcache import KVCacheSpec, PagedKVCache
from repro.serving.scheduler import (
    ContinuousBatchScheduler,
    Request,
    RequestState,
    SchedulerLimits,
    StaticBatchScheduler,
)


def make_kv(n_blocks: int = 256) -> PagedKVCache:
    spec = KVCacheSpec(n_layers=1, kv_heads=1, head_dim=8, block_size=16)
    return PagedKVCache(spec, capacity_bytes=n_blocks * spec.bytes_per_block)


def reqs(n: int, prompt: int = 16, out: int = 8) -> list[Request]:
    return [Request(i, prompt, out) for i in range(n)]


class TestRequest:
    def test_context_len(self):
        r = Request(0, 10, 5)
        assert r.context_len == 10
        r.generated = 3
        assert r.context_len == 13
        assert not r.done
        r.generated = 5
        assert r.done

    def test_validation(self):
        with pytest.raises(SchedulingError):
            Request(0, 0, 5)
        with pytest.raises(SchedulingError):
            Request(0, 5, 0)


class TestStaticBatch:
    def test_full_run(self):
        kv = make_kv()
        sched = StaticBatchScheduler(reqs(4, out=3), kv)
        sched.prefill()
        steps = 0
        while not sched.finished:
            active = sched.step()
            steps += 1
            assert len(active) == 4 if steps <= 3 else 0
        assert steps == 3
        assert kv.used_blocks == 0  # everything freed on completion

    def test_prefill_allocates(self):
        kv = make_kv()
        sched = StaticBatchScheduler(reqs(2, prompt=32), kv)
        sched.prefill()
        assert kv.used_blocks == 4

    def test_double_prefill_rejected(self):
        sched = StaticBatchScheduler(reqs(1), make_kv())
        sched.prefill()
        with pytest.raises(SchedulingError):
            sched.prefill()

    def test_step_before_prefill_rejected(self):
        sched = StaticBatchScheduler(reqs(1), make_kv())
        with pytest.raises(SchedulingError):
            sched.step()

    def test_empty_batch_rejected(self):
        with pytest.raises(SchedulingError):
            StaticBatchScheduler([], make_kv())


class TestContinuous:
    def test_admit_all_when_capacity(self):
        sched = ContinuousBatchScheduler(make_kv())
        for r in reqs(3):
            sched.submit(r)
        admitted = sched.admit()
        assert len(admitted) == 3
        assert all(r.state is RequestState.RUNNING for r in admitted)

    def test_fcfs_no_skips(self):
        kv = make_kv(n_blocks=3)
        sched = ContinuousBatchScheduler(kv)
        sched.submit(Request(0, 32, 4))   # needs 2 blocks + headroom
        sched.submit(Request(1, 16, 4))
        admitted = sched.admit()
        # Request 0 takes 2 blocks; request 1 would need 1 + headroom -> the
        # head blocks and nothing behind it may jump the queue.
        assert [r.request_id for r in admitted] == [0]
        assert len(sched.waiting) == 1

    def test_max_num_seqs(self):
        sched = ContinuousBatchScheduler(
            make_kv(), SchedulerLimits(max_num_seqs=2)
        )
        for r in reqs(5):
            sched.submit(r)
        assert len(sched.admit()) == 2

    def test_token_budget(self):
        sched = ContinuousBatchScheduler(
            make_kv(), SchedulerLimits(max_batched_tokens=40)
        )
        for r in reqs(5, prompt=16):
            sched.submit(r)
        assert len(sched.admit()) == 2  # 16 + 16 <= 40 < 48

    def test_step_finishes_and_frees(self):
        kv = make_kv()
        sched = ContinuousBatchScheduler(kv)
        sched.submit(Request(0, 16, 2))
        sched.admit()
        sched.step()
        assert sched.running and not sched.finished
        sched.step()
        assert not sched.running
        assert len(sched.finished) == 1
        assert kv.used_blocks == 0

    def test_admission_resumes_after_free(self):
        kv = make_kv(n_blocks=3)
        sched = ContinuousBatchScheduler(kv)
        sched.submit(Request(0, 32, 1))
        sched.submit(Request(1, 32, 1))
        assert len(sched.admit()) == 1
        sched.step()  # request 0 finishes, blocks return
        assert len(sched.admit()) == 1

    def test_has_work(self):
        sched = ContinuousBatchScheduler(make_kv())
        assert not sched.has_work
        sched.submit(Request(0, 4, 1))
        assert sched.has_work
        sched.admit()
        sched.step()
        assert not sched.has_work

    def test_resubmit_running_rejected(self):
        sched = ContinuousBatchScheduler(make_kv())
        r = Request(0, 4, 2)
        sched.submit(r)
        sched.admit()
        with pytest.raises(SchedulingError):
            sched.submit(r)


class TestPolicies:
    def test_registry(self):
        from repro.errors import UnknownSpecError
        from repro.serving.scheduler import (
            FCFSPolicy, POLICIES, get_policy,
        )

        assert set(POLICIES) == {
            "fcfs", "priority", "priority_aging", "sjf"
        }
        assert isinstance(get_policy("FCFS"), FCFSPolicy)
        passthrough = FCFSPolicy()
        assert get_policy(passthrough) is passthrough
        with pytest.raises(UnknownSpecError):
            get_policy("lifo")

    def test_fcfs_orders_by_arrival(self):
        from repro.serving.scheduler import get_policy

        a = Request(0, 16, 4, arrival_s=2.0)
        b = Request(1, 16, 4, arrival_s=1.0)
        assert get_policy("fcfs").order_waiting([a, b]) == [b, a]
        # Newest first for preemption.
        assert get_policy("fcfs").order_victims([a, b])[0] is a

    def test_priority_orders_then_fcfs(self):
        from repro.serving.scheduler import get_policy

        low = Request(0, 16, 4, arrival_s=0.0, priority=0)
        high_late = Request(1, 16, 4, arrival_s=1.0, priority=5)
        high_early = Request(2, 16, 4, arrival_s=0.5, priority=5)
        order = get_policy("priority").order_waiting(
            [low, high_late, high_early]
        )
        assert [r.request_id for r in order] == [2, 1, 0]
        assert get_policy("priority").order_victims(
            [low, high_late]
        )[0] is low

    def test_sjf_orders_by_remaining_work(self):
        from repro.serving.scheduler import get_policy

        big = Request(0, 512, 512, arrival_s=0.0)
        small = Request(1, 16, 8, arrival_s=5.0)
        assert get_policy("sjf").order_waiting([big, small])[0] is small
        assert get_policy("sjf").order_victims([big, small])[0] is big

    def test_aging_matches_priority_at_rate_zero(self):
        from repro.serving.scheduler import AgingPriorityPolicy, get_policy

        low_old = Request(0, 16, 4, arrival_s=0.0, priority=0)
        high_new = Request(1, 16, 4, arrival_s=50.0, priority=1)
        frozen = AgingPriorityPolicy(aging_rate=0.0)
        plain = get_policy("priority")
        assert (
            [r.request_id for r in frozen.order_waiting([low_old, high_new])]
            == [r.request_id for r in plain.order_waiting([low_old, high_new])]
            == [1, 0]
        )

    def test_aging_lets_waiting_batch_request_overtake(self):
        from repro.serving.scheduler import AgingPriorityPolicy

        policy = AgingPriorityPolicy(aging_rate=0.2)
        batch_old = Request(0, 16, 4, arrival_s=0.0, priority=0)
        chat_new = Request(1, 16, 4, arrival_s=10.0, priority=1)
        # 10 s of waiting at 0.2/s buys 2 effective classes — the batch
        # request now outranks the fresh chat request by one.
        assert policy.order_waiting([chat_new, batch_old])[0] is batch_old
        # ...and is correspondingly harder to evict.
        assert policy.order_victims([chat_new, batch_old])[0] is chat_new
        # A chat request arriving before the crossover still wins.
        chat_early = Request(2, 16, 4, arrival_s=4.0, priority=1)
        assert policy.order_waiting([chat_early, batch_old])[0] is chat_early

    def test_aging_rate_validation(self):
        from repro.errors import SchedulingError
        from repro.serving.scheduler import AgingPriorityPolicy

        with pytest.raises(SchedulingError):
            AgingPriorityPolicy(aging_rate=-0.1)

    def test_priority_admission_order(self):
        sched = ContinuousBatchScheduler(
            make_kv(), SchedulerLimits(max_num_seqs=1), policy="priority"
        )
        sched.submit(Request(0, 16, 4, priority=0))
        sched.submit(Request(1, 16, 4, priority=9))
        admitted = sched.admit()
        assert [r.request_id for r in admitted] == [1]


class TestChunkedPlanning:
    def test_plan_prioritises_decode(self):
        sched = ContinuousBatchScheduler(make_kv())
        decoding = Request(0, 16, 8)
        filling = Request(1, 64, 8)
        sched.submit(decoding)
        sched.submit(filling)
        sched.admit(enforce_token_budget=False)
        decoding.prefill_remaining = 0
        plan = sched.plan_step(max_batched_tokens=40)
        assert plan.decode == [decoding]
        assert plan.prefill == [(filling, 39)]
        assert plan.n_batched_tokens == 40
        assert plan.decode_ctx_sum == decoding.context_len

    def test_prefill_spreads_across_steps(self):
        sched = ContinuousBatchScheduler(make_kv())
        req = Request(0, 100, 4)
        sched.submit(req)
        sched.admit(enforce_token_budget=False)
        chunks = []
        while req.prefill_remaining:
            plan = sched.plan_step(max_batched_tokens=32)
            chunks.append(plan.n_prefill_tokens)
            sched.apply_step(plan, clock=float(len(chunks)))
        assert chunks == [32, 32, 32, 4]
        assert req.first_token_s == 4.0  # stamped when prefill completed

    def test_apply_step_rejects_bad_chunk(self):
        from repro.serving.scheduler import StepPlan

        sched = ContinuousBatchScheduler(make_kv())
        req = Request(0, 16, 4)
        sched.submit(req)
        sched.admit()
        with pytest.raises(SchedulingError):
            sched.apply_step(
                StepPlan(prefill=[(req, 999)]), clock=0.0
            )

    def test_budget_not_enforced_for_large_prompt(self):
        # A prompt above max_batched_tokens admits in chunked mode ...
        sched = ContinuousBatchScheduler(
            make_kv(), SchedulerLimits(max_batched_tokens=64)
        )
        sched.submit(Request(0, 256, 4))
        assert len(sched.admit(enforce_token_budget=False)) == 1
        # ... but blocks in group mode (the seed behaviour).
        sched2 = ContinuousBatchScheduler(
            make_kv(), SchedulerLimits(max_batched_tokens=64)
        )
        sched2.submit(Request(1, 256, 4))
        assert sched2.admit() == []


class TestPreemptionMechanics:
    def test_preempt_frees_kv_and_requeues(self):
        kv = make_kv(n_blocks=8)
        sched = ContinuousBatchScheduler(kv)
        req = Request(0, 32, 8)
        sched.submit(req)
        sched.admit()
        assert kv.used_blocks == 2
        sched.preempt(req)
        assert kv.used_blocks == 0
        assert req.state is RequestState.PREEMPTED
        assert req.n_preemptions == 1
        assert sched.waiting == [req] and sched.running == []

    def test_preempted_readmission_reprefills_context(self):
        kv = make_kv(n_blocks=8)
        sched = ContinuousBatchScheduler(kv)
        req = Request(0, 32, 8)
        sched.submit(req)
        sched.admit()
        req.prefill_remaining = 0
        req.generated = 5
        sched.preempt(req)
        readmitted = sched.admit()
        assert readmitted == [req]
        # Recompute: prompt plus the 5 already-generated tokens.
        assert req.prefill_remaining == 37
        assert kv.sequence_length(0) == 37

    def test_preempt_non_running_rejected(self):
        sched = ContinuousBatchScheduler(make_kv())
        with pytest.raises(SchedulingError):
            sched.preempt(Request(0, 16, 4))

    def test_ensure_decode_capacity_preempts_newest_first(self):
        kv = make_kv(n_blocks=4)  # 64 token slots
        sched = ContinuousBatchScheduler(kv)
        old = Request(0, 31, 40, arrival_s=0.0)
        new = Request(1, 31, 40, arrival_s=1.0)
        for r in (old, new):
            sched.submit(r)
        sched.admit()
        # Fill both blocks to the boundary: the next token each needs a
        # new block, but 0 are free.
        for r in (old, new):
            kv.append_token(r.request_id)  # 32 tokens = 2 blocks each
            r.prefill_remaining = 0
        decode = list(sched.running)
        victims = sched.ensure_decode_capacity(decode)
        assert victims == [new]
        assert decode == [old]
        assert sched.n_preemptions == 1

    def test_last_running_request_capacity_error(self):
        from repro.errors import CapacityError

        kv = make_kv(n_blocks=3)
        sched = ContinuousBatchScheduler(kv)
        req = Request(0, 32, 64)
        sched.submit(req)
        sched.admit()
        kv.append_token(req.request_id, 16)  # 48 tokens: all 3 blocks held
        with pytest.raises(CapacityError):
            sched.ensure_decode_capacity([req])


class TestReleaseAndCappedAdmission:
    """Hand-off plumbing the disaggregated kernel stages rely on."""

    def test_release_frees_kv_without_finishing(self):
        kv = make_kv(n_blocks=8)
        sched = ContinuousBatchScheduler(kv)
        req = Request(0, 32, 8)
        sched.submit(req)
        sched.admit()
        assert kv.used_blocks == 2
        sched.release(req)
        assert kv.used_blocks == 0
        assert sched.running == [] and sched.finished == []
        # No recompute debt, no preemption count: this is a hand-off.
        assert req.state is RequestState.WAITING
        assert req.n_preemptions == 0
        # A downstream scheduler can submit it straight away.
        downstream = ContinuousBatchScheduler(make_kv())
        downstream.submit(req)
        assert downstream.waiting == [req]

    def test_release_non_running_rejected(self):
        sched = ContinuousBatchScheduler(make_kv())
        with pytest.raises(SchedulingError):
            sched.release(Request(0, 16, 4))

    def test_admit_max_requests_caps_the_round(self):
        sched = ContinuousBatchScheduler(make_kv())
        for r in reqs(5):
            sched.submit(r)
        first = sched.admit(enforce_token_budget=False, max_requests=1)
        assert [r.request_id for r in first] == [0]
        rest = sched.admit(enforce_token_budget=False)
        assert [r.request_id for r in rest] == [1, 2, 3, 4]
