"""Tests for static-batch and continuous-batching schedulers."""

import pytest

from repro.errors import SchedulingError
from repro.serving.kvcache import KVCacheSpec, PagedKVCache
from repro.serving.scheduler import (
    ContinuousBatchScheduler,
    Request,
    RequestState,
    SchedulerLimits,
    StaticBatchScheduler,
)


def make_kv(n_blocks: int = 256) -> PagedKVCache:
    spec = KVCacheSpec(n_layers=1, kv_heads=1, head_dim=8, block_size=16)
    return PagedKVCache(spec, capacity_bytes=n_blocks * spec.bytes_per_block)


def reqs(n: int, prompt: int = 16, out: int = 8) -> list[Request]:
    return [Request(i, prompt, out) for i in range(n)]


class TestRequest:
    def test_context_len(self):
        r = Request(0, 10, 5)
        assert r.context_len == 10
        r.generated = 3
        assert r.context_len == 13
        assert not r.done
        r.generated = 5
        assert r.done

    def test_validation(self):
        with pytest.raises(SchedulingError):
            Request(0, 0, 5)
        with pytest.raises(SchedulingError):
            Request(0, 5, 0)


class TestStaticBatch:
    def test_full_run(self):
        kv = make_kv()
        sched = StaticBatchScheduler(reqs(4, out=3), kv)
        sched.prefill()
        steps = 0
        while not sched.finished:
            active = sched.step()
            steps += 1
            assert len(active) == 4 if steps <= 3 else 0
        assert steps == 3
        assert kv.used_blocks == 0  # everything freed on completion

    def test_prefill_allocates(self):
        kv = make_kv()
        sched = StaticBatchScheduler(reqs(2, prompt=32), kv)
        sched.prefill()
        assert kv.used_blocks == 4

    def test_double_prefill_rejected(self):
        sched = StaticBatchScheduler(reqs(1), make_kv())
        sched.prefill()
        with pytest.raises(SchedulingError):
            sched.prefill()

    def test_step_before_prefill_rejected(self):
        sched = StaticBatchScheduler(reqs(1), make_kv())
        with pytest.raises(SchedulingError):
            sched.step()

    def test_empty_batch_rejected(self):
        with pytest.raises(SchedulingError):
            StaticBatchScheduler([], make_kv())


class TestContinuous:
    def test_admit_all_when_capacity(self):
        sched = ContinuousBatchScheduler(make_kv())
        for r in reqs(3):
            sched.submit(r)
        admitted = sched.admit()
        assert len(admitted) == 3
        assert all(r.state is RequestState.RUNNING for r in admitted)

    def test_fcfs_no_skips(self):
        kv = make_kv(n_blocks=3)
        sched = ContinuousBatchScheduler(kv)
        sched.submit(Request(0, 32, 4))   # needs 2 blocks + headroom
        sched.submit(Request(1, 16, 4))
        admitted = sched.admit()
        # Request 0 takes 2 blocks; request 1 would need 1 + headroom -> the
        # head blocks and nothing behind it may jump the queue.
        assert [r.request_id for r in admitted] == [0]
        assert len(sched.waiting) == 1

    def test_max_num_seqs(self):
        sched = ContinuousBatchScheduler(
            make_kv(), SchedulerLimits(max_num_seqs=2)
        )
        for r in reqs(5):
            sched.submit(r)
        assert len(sched.admit()) == 2

    def test_token_budget(self):
        sched = ContinuousBatchScheduler(
            make_kv(), SchedulerLimits(max_batched_tokens=40)
        )
        for r in reqs(5, prompt=16):
            sched.submit(r)
        assert len(sched.admit()) == 2  # 16 + 16 <= 40 < 48

    def test_step_finishes_and_frees(self):
        kv = make_kv()
        sched = ContinuousBatchScheduler(kv)
        sched.submit(Request(0, 16, 2))
        sched.admit()
        sched.step()
        assert sched.running and not sched.finished
        sched.step()
        assert not sched.running
        assert len(sched.finished) == 1
        assert kv.used_blocks == 0

    def test_admission_resumes_after_free(self):
        kv = make_kv(n_blocks=3)
        sched = ContinuousBatchScheduler(kv)
        sched.submit(Request(0, 32, 1))
        sched.submit(Request(1, 32, 1))
        assert len(sched.admit()) == 1
        sched.step()  # request 0 finishes, blocks return
        assert len(sched.admit()) == 1

    def test_has_work(self):
        sched = ContinuousBatchScheduler(make_kv())
        assert not sched.has_work
        sched.submit(Request(0, 4, 1))
        assert sched.has_work
        sched.admit()
        sched.step()
        assert not sched.has_work

    def test_resubmit_running_rejected(self):
        sched = ContinuousBatchScheduler(make_kv())
        r = Request(0, 4, 2)
        sched.submit(r)
        sched.admit()
        with pytest.raises(SchedulingError):
            sched.submit(r)
