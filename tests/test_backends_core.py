"""Tests for backend configs and the public ZipServ facade."""

import numpy as np
import pytest

from repro import (
    BACKENDS,
    GPUS,
    MODELS,
    ZipServ,
    ZipServConfig,
    compress_weights,
    decompress_weights,
    get_backend,
)
from repro.bf16 import gaussian_bf16_matrix
from repro.core.api import plan_for
from repro.core.report import compare_backends
from repro.errors import ConfigError, UnknownSpecError


class TestBackends:
    def test_four_systems(self):
        assert set(BACKENDS) == {"zipserv", "vllm", "transformers", "dfloat11"}

    def test_weight_schemes(self):
        assert get_backend("zipserv").weight_scheme == "tcatbe"
        assert get_backend("vllm").weight_scheme == "dense"
        assert get_backend("dfloat11").weight_scheme == "dfloat11"

    def test_attention_kinds(self):
        assert get_backend("vllm").attention == "paged"
        assert get_backend("transformers").attention == "eager"

    def test_unknown(self):
        with pytest.raises(UnknownSpecError):
            get_backend("tgi")

    def test_invalid_construction(self):
        from repro.serving.backends import BackendConfig

        with pytest.raises(ValueError):
            BackendConfig(
                name="x", weight_scheme="zip", linear_mode="cublas",
                attention="paged", dispatch_overhead_s=0.0,
                other_ops_per_layer=1, fixed_step_overhead_s=0.0,
            )


class TestConfigResolve:
    def test_from_names(self):
        cfg = ZipServConfig.resolve("llama3.1-8b", "rtx4090")
        assert cfg.model.name == "llama3.1-8b"
        assert cfg.backend.name == "zipserv"

    def test_from_objects(self):
        cfg = ZipServConfig.resolve(
            MODELS["llama3.1-8b"], GPUS["l40s"], BACKENDS["vllm"]
        )
        assert cfg.gpu.name == "l40s"

    def test_validation(self):
        with pytest.raises(ConfigError):
            ZipServConfig.resolve("llama3.1-8b", "rtx4090",
                                  tensor_parallel=0)
        with pytest.raises(UnknownSpecError):
            ZipServConfig.resolve("llama3.1-8b", "tpu-v5")


class TestFacade:
    def test_compression_report(self):
        zs = ZipServ("llama3.1-8b", "rtx4090")
        report = zs.compression_report()
        assert report.dense_gib == pytest.approx(14.96, abs=0.02)
        assert 0.70 < report.size_fraction < 0.74
        assert "10.8" in report.summary() or "10.7" in report.summary()

    def test_dense_report_identity(self):
        zs = ZipServ("llama3.1-8b", "rtx4090", backend="vllm")
        report = zs.compression_report()
        assert report.ratio == 1.0

    def test_generate(self):
        zs = ZipServ("llama3.1-8b", "rtx4090")
        res = zs.generate(batch_size=8, prompt_len=64, output_len=32)
        assert res.throughput_tok_s > 100

    def test_memory_plan(self):
        zs = ZipServ("llama3.1-8b", "rtx4090")
        assert zs.memory_plan.kv_gib > 8.0

    def test_decode_step_breakdown(self):
        zs = ZipServ("llama3.1-8b", "rtx4090")
        step = zs.decode_step_breakdown(32, 1024)
        assert step.linear_s > step.attention_s

    def test_linear_layer_profile(self):
        zs = ZipServ("llama3.1-8b", "rtx4090")
        profile = zs.linear_layer_profile("gateup_proj", 32)
        assert profile.details["path"] == "fused"
        with pytest.raises(KeyError):
            zs.linear_layer_profile("moe_router", 32)

    def test_fits(self):
        zs = ZipServ("llama3.1-8b", "rtx4090")
        assert zs.fits(8, 1024)
        assert not zs.fits(4096, 32768)

    def test_plan_for(self):
        plan = plan_for("llama3.1-70b", "l40s", "zipserv", tensor_parallel=4)
        assert plan.weight_gib < 25

    def test_compress_decompress_helpers(self):
        w = gaussian_bf16_matrix(64, 80, sigma=0.02, seed=71)
        matrix = compress_weights(w)
        assert np.array_equal(decompress_weights(matrix), w)


class TestCompareBackends:
    def test_rows_normalised(self):
        zs = ZipServ("llama3.1-8b", "rtx4090")
        vl = ZipServ("llama3.1-8b", "rtx4090", backend="vllm")
        results = {
            "zipserv": zs.generate(8, 64, 32),
            "vllm": vl.generate(8, 64, 32),
        }
        rows = compare_backends(results, reference="vllm")
        by_name = {r.backend: r for r in rows}
        assert by_name["vllm"].speedup_vs_reference == pytest.approx(1.0)
        assert by_name["zipserv"].speedup_vs_reference > 1.0

    def test_missing_reference(self):
        with pytest.raises(KeyError):
            compare_backends({}, reference="vllm")
