"""Tests for the fleet layer: router policies, FleetCore, autoscaler.

The invariants that make a fleet simulation trustworthy:

* **determinism** — routing decisions are a pure function of the trace
  and replica state (no RNG, platform-stable tenant hash), so the same
  trace routes identically across runs;
* **conservation** — across replicas, under overload and deadlines:
  ``sum(per-replica finished) == fleet finished`` and
  ``finished + unfinished + rejected == offered``;
* **stickiness** — session affinity keeps a tenant on one replica for
  as long as that replica exists;
* **safety** — the autoscaler never drains a replica with in-flight
  work, and scale-ups respect the warm-up delay;
* **equivalence** — a 1-replica round-robin fleet is the colocated
  engine, bit for bit.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError, SchedulingError, UnknownSpecError
from repro.gpu.specs import get_gpu
from repro.serving import (
    ROUTING_POLICIES,
    AutoscalerConfig,
    AutoscalerStage,
    DisaggConfig,
    FleetConfig,
    FleetCore,
    InferenceEngine,
    LeastKVOccupancyPolicy,
    RoundRobinPolicy,
    RoutingPolicy,
    SchedulerLimits,
    ServingConfig,
    SLOTarget,
    find_knee,
    get_backend,
    get_model,
    get_routing_policy,
    goodput_feasible,
    list_routing_policies,
    multi_tenant_trace,
    poisson_trace,
    register_routing_policy,
    run_open_loop,
)

LIMITS = SchedulerLimits(max_num_seqs=16, max_batched_tokens=8192)
BUILTINS = (
    "round_robin",
    "least_outstanding",
    "least_kv_occupancy",
    "session_affinity",
)


@pytest.fixture(scope="module")
def engine():
    return InferenceEngine(
        get_model("llama3.1-8b"), get_gpu("rtx4090"), get_backend("zipserv")
    )


def fleet_config(n=4, routing="round_robin", **fleet_kw) -> ServingConfig:
    return ServingConfig(
        mode="fleet", prefill_mode="chunked", cost_bucket=64, limits=LIMITS,
        fleet=FleetConfig(n_replicas=n, routing=routing, **fleet_kw),
    )


def serve_fleet(engine, config, n=120, rate=8.0, seed=0, deadline_s=None):
    return engine.serve(
        poisson_trace(n, rate, seed=seed), config=config,
        deadline_s=deadline_s,
    )


def fleet_core(engine, config) -> FleetCore:
    """A FleetCore on the engine's stack, for router/autoscaler inspection."""
    return FleetCore(
        engine.costs, engine.kv_spec, engine.plan.kv_bytes, config
    )


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestRoutingRegistry:
    def test_builtins_registered(self):
        assert set(BUILTINS) <= set(list_routing_policies())

    def test_get_by_name_case_insensitive(self):
        assert isinstance(
            get_routing_policy("Round_Robin"), RoundRobinPolicy
        )

    def test_instance_passes_through(self):
        policy = LeastKVOccupancyPolicy()
        assert get_routing_policy(policy) is policy

    def test_unknown_name_suggests(self):
        with pytest.raises(UnknownSpecError) as excinfo:
            get_routing_policy("round_robbin")
        assert "round_robin" in str(excinfo.value)

    def test_unknown_name_rejected_at_config_time(self):
        with pytest.raises(UnknownSpecError):
            FleetConfig(routing="nope")

    def test_register_custom_policy(self, engine):
        @register_routing_policy
        class AlwaysFirstPolicy(RoutingPolicy):
            name = "always_first"

            def select(self, req, active, now):
                return active[0]

        try:
            result = serve_fleet(
                engine, fleet_config(n=3, routing="always_first"), n=40
            )
            assert result.routing_histogram == (40, 0, 0)
        finally:
            del ROUTING_POLICIES["always_first"]

    def test_register_collision_raises(self):
        class Impostor(RoutingPolicy):
            name = "round_robin"

            def select(self, req, active, now):
                return active[0]

        with pytest.raises(SchedulingError):
            register_routing_policy(Impostor)


# ----------------------------------------------------------------------
# Routing behaviour
# ----------------------------------------------------------------------
class TestRouting:
    def test_round_robin_even_split(self, engine):
        result = serve_fleet(engine, fleet_config(n=4), n=200)
        assert result.routing_histogram == (50, 50, 50, 50)
        assert result.n_requests == 200

    @pytest.mark.parametrize("routing", BUILTINS)
    def test_all_policies_serve_everything(self, engine, routing):
        result = serve_fleet(engine, fleet_config(n=3, routing=routing))
        assert result.n_requests == 120
        assert sum(result.routing_histogram) == 120

    @settings(max_examples=6, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        routing=st.sampled_from(BUILTINS),
    )
    def test_routing_is_deterministic(self, engine, seed, routing):
        """Same trace, same policy → identical decisions, twice over."""
        config = fleet_config(n=3, routing=routing)
        first = serve_fleet(engine, config, n=60, seed=seed)
        second = serve_fleet(engine, config, n=60, seed=seed)
        assert first.routing_histogram == second.routing_histogram
        assert first.timings == second.timings
        assert first.makespan_s == second.makespan_s

    def test_session_affinity_stickiness(self, engine):
        """Same tenant → same replica, for every tenant in the trace."""
        requests = multi_tenant_trace(seed=3)
        tenant_of = {r.request_id: r.tenant for r in requests}
        core = fleet_core(
            engine, fleet_config(n=4, routing="session_affinity")
        )
        result = core.serve(requests)
        homes: dict[str, int] = {}
        for request_id, replica_index in core.last_router.assignments.items():
            tenant = tenant_of[request_id]
            homes.setdefault(tenant, replica_index)
            assert homes[tenant] == replica_index, tenant
        # Multi-tenant means this test saw more than one tenant.
        assert len(homes) >= 2
        assert result.n_requests == len(requests)

    def test_one_replica_fleet_is_the_colocated_engine(self, engine):
        """``n_replicas=1`` reproduces colocated serving bit for bit."""
        trace = lambda: poisson_trace(150, 10.0, seed=5)  # noqa: E731
        colocated = engine.serve(
            trace(),
            config=ServingConfig(
                prefill_mode="chunked", cost_bucket=64, limits=LIMITS
            ),
        )
        fleet = engine.serve(trace(), config=fleet_config(n=1))
        assert fleet.makespan_s == colocated.makespan_s
        # The fleet result sorts finished requests by id; the timings
        # themselves (every float) must match bit for bit.
        key = lambda t: t.request_id  # noqa: E731
        assert sorted(fleet.timings, key=key) == sorted(
            colocated.timings, key=key
        )
        assert fleet.n_steps == colocated.n_steps


# ----------------------------------------------------------------------
# Conservation + per-replica breakdown
# ----------------------------------------------------------------------
class TestConservation:
    def test_per_replica_finished_sums_to_fleet(self, engine):
        result = serve_fleet(
            engine, fleet_config(n=4, routing="least_kv_occupancy"), n=200
        )
        assert sum(s.n_finished for s in result.replicas) == result.n_requests
        assert sum(result.routing_histogram) == 200

    @pytest.mark.parametrize(
        "routing", ("round_robin", "least_outstanding", "session_affinity")
    )
    def test_conservation_under_overload_and_deadline(self, engine, routing):
        """The satellite invariant: overload + deadline loses nothing."""
        result = serve_fleet(
            engine, fleet_config(n=2, routing=routing),
            n=400, rate=80.0, deadline_s=4.0,
        )
        assert (
            result.n_requests + result.n_unfinished + result.n_rejected
            == 400
        )
        assert sum(s.n_finished for s in result.replicas) == result.n_requests
        assert result.n_unfinished > 0  # the deadline actually bit
        per_replica_seen = sum(
            s.n_finished + s.n_unfinished for s in result.replicas
        )
        assert per_replica_seen == sum(result.routing_histogram)

    def test_replica_stats_shape(self, engine):
        result = serve_fleet(engine, fleet_config(n=3), n=90)
        assert len(result.replicas) == 3
        for i, stats in enumerate(result.replicas):
            assert stats.index == i
            assert stats.mode == "colocated"
            assert [p.name for p in stats.pools] == [f"replica{i}/engine"]
        assert [p.name for p in result.pools] == [
            f"replica{i}/engine" for i in range(3)
        ]

    def test_mixed_fleet_reports_per_mode_stats(self, engine):
        colocated = ServingConfig(
            prefill_mode="chunked", cost_bucket=64, limits=LIMITS
        )
        disagg = ServingConfig(
            mode="disaggregated", cost_bucket=64, limits=LIMITS,
            disagg=DisaggConfig(prefill_mode="chunked"),
        )
        config = ServingConfig(
            mode="fleet", cost_bucket=64, limits=LIMITS,
            fleet=FleetConfig(
                routing="least_outstanding",
                instances=(colocated, disagg),
            ),
        )
        result = serve_fleet(engine, config, n=80, rate=5.0)
        assert result.n_requests == 80
        assert [s.mode for s in result.replicas] == [
            "colocated", "disaggregated"
        ]
        assert result.replicas[0].transfer is None
        transfer = result.replicas[1].transfer
        assert transfer is not None
        assert transfer.n_transfers == result.replicas[1].n_finished
        names = [p.name for p in result.replicas[1].pools]
        assert names == ["replica1/prefill", "replica1/decode"]


# ----------------------------------------------------------------------
# Autoscaler
# ----------------------------------------------------------------------
class _StubReplica:
    def __init__(self, index, occupancy=0.0, outstanding=0, active=0.0):
        self.index = index
        self._occupancy = occupancy
        self.n_outstanding = outstanding
        self.active_since = active
        self.stall_s = 0.0

    def kv_occupancy(self):
        return self._occupancy


class _StubRouter:
    n_unrouted = 1  # keeps the stage ticking


class TestAutoscalerUnit:
    def test_scales_up_past_high_watermark_with_warmup(self):
        config = AutoscalerConfig(
            min_replicas=1, interval_s=1.0, warmup_s=2.5, kv_high_frac=0.8
        )
        replicas = [
            _StubReplica(0, occupancy=0.9, outstanding=4),
            _StubReplica(1, active=None),
        ]
        stage = AutoscalerStage(config, _StubRouter(), replicas)
        stage.advance(1.0)
        (event,) = stage.events
        assert event.action == "up"
        assert event.replica == 1
        assert event.active_at_s == pytest.approx(1.0 + 2.5)
        assert replicas[1].active_since == pytest.approx(3.5)

    def test_never_drains_replica_with_inflight_work(self):
        config = AutoscalerConfig(min_replicas=1, interval_s=1.0,
                                  kv_low_frac=0.2)
        replicas = [
            _StubReplica(0, occupancy=0.01, outstanding=0),
            _StubReplica(1, occupancy=0.05, outstanding=3),
        ]
        stage = AutoscalerStage(config, _StubRouter(), replicas)
        stage.advance(1.0)
        # Replica 1 is busy: the only drain candidate is idle replica 0,
        # and draining it would violate min_replicas=1 only if replica 1
        # were inactive — here replica 0 drains, replica 1 survives.
        (event,) = stage.events
        assert event.action == "down"
        assert event.replica == 0
        assert event.n_outstanding == 0
        assert replicas[1].active_since is not None

    def test_no_drain_when_every_active_is_busy(self):
        config = AutoscalerConfig(min_replicas=1, interval_s=1.0,
                                  kv_low_frac=0.2)
        replicas = [
            _StubReplica(0, occupancy=0.05, outstanding=2),
            _StubReplica(1, occupancy=0.05, outstanding=1),
        ]
        stage = AutoscalerStage(config, _StubRouter(), replicas)
        stage.advance(1.0)
        assert stage.events == []

    def test_respects_min_replicas_floor(self):
        config = AutoscalerConfig(min_replicas=2, interval_s=1.0,
                                  kv_low_frac=0.2)
        replicas = [
            _StubReplica(0, occupancy=0.0, outstanding=0),
            _StubReplica(1, occupancy=0.0, outstanding=0),
        ]
        stage = AutoscalerStage(config, _StubRouter(), replicas)
        stage.advance(1.0)
        assert stage.events == []


class TestAutoscalerEndToEnd:
    def test_burst_scales_up_and_serves_everything(self, engine):
        config = fleet_config(
            n=4, routing="least_outstanding",
            autoscaler=AutoscalerConfig(
                min_replicas=1, interval_s=0.25, warmup_s=0.5,
                kv_low_frac=0.01, kv_high_frac=0.05,
            ),
        )
        core = fleet_core(engine, config)
        result = core.serve(poisson_trace(200, 30.0, seed=0))
        assert result.n_requests == 200
        events = core.scale_events
        assert any(e.action == "up" for e in events)
        # Scaled-up replicas actually took traffic.
        assert sum(1 for n in result.routing_histogram if n > 0) >= 2
        for event in events:
            if event.action == "down":
                assert event.n_outstanding == 0

    def test_without_autoscaler_all_replicas_active(self, engine):
        result = serve_fleet(engine, fleet_config(n=4), n=100, rate=20.0)
        assert all(n > 0 for n in result.routing_histogram)


# ----------------------------------------------------------------------
# Config validation
# ----------------------------------------------------------------------
class TestConfigValidation:
    def test_defaults_fleet_config_for_fleet_mode(self):
        config = ServingConfig(mode="fleet")
        assert isinstance(config.fleet, FleetConfig)
        assert config.fleet.n_replicas == 2

    def test_rejects_non_config_fleet(self):
        with pytest.raises(ConfigError):
            ServingConfig(mode="fleet", fleet="nope")

    def test_rejects_nonpositive_replicas(self):
        with pytest.raises(ConfigError):
            FleetConfig(n_replicas=0)

    def test_rejects_nested_fleet_instance(self):
        with pytest.raises(ConfigError):
            FleetConfig(instance=ServingConfig(mode="fleet"))

    def test_rejects_codec_slots_on_instances(self):
        with pytest.raises(ConfigError):
            FleetConfig(instance=ServingConfig(weight_codec="kvcomp"))

    def test_rejects_autoscaler_floor_above_fleet(self):
        with pytest.raises(ConfigError):
            FleetConfig(
                n_replicas=2,
                autoscaler=AutoscalerConfig(min_replicas=3),
            )

    def test_autoscaler_watermark_ordering(self):
        with pytest.raises(ConfigError):
            AutoscalerConfig(kv_low_frac=0.9, kv_high_frac=0.8)

    def test_instances_tuple_sets_size(self):
        inner = ServingConfig(prefill_mode="chunked")
        config = FleetConfig(instances=(inner, inner, inner))
        assert config.size == 3


# ----------------------------------------------------------------------
# Engine dispatch + open-loop driver
# ----------------------------------------------------------------------
class TestEngineAndOpenLoop:
    def test_engine_dispatches_fleet_mode(self, engine):
        result = serve_fleet(engine, fleet_config(n=2), n=50)
        assert result.mode == "fleet"
        assert result.policy == "fcfs"

    def test_find_knee_works_on_a_fleet(self, engine):
        """The open-loop driver needs no fleet-specific plumbing."""
        config = fleet_config(n=2, routing="least_kv_occupancy")

        def serve(requests, deadline_s):
            return engine.serve(
                requests, config=config, deadline_s=deadline_s
            )

        def probe(rate):
            return goodput_feasible(run_open_loop(
                serve, "fixed_length", rate, 6.0, warmup_s=1.0,
                cooldown_s=1.0, seed=0, slo=SLOTarget(2.0, 0.25),
            ))

        knee = find_knee(probe, 0.5, 64.0, rate_tol_rps=4.0, max_probes=6)
        assert 0.5 < knee.knee_rps < 64.0
        assert knee.infeasible_rps > knee.knee_rps
        assert knee.n_probes >= 2
