"""Tests for the canonical Huffman codec (DFloat11-style container)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.codecs.huffman import (
    HuffmanCodec,
    build_decode_lut,
    canonical_codes,
    huffman_code_lengths,
)
from repro.errors import CodecError


def skewed_bytes(n: int, seed: int = 0) -> np.ndarray:
    """Zipf-ish byte stream resembling an exponent plane."""
    rng = np.random.default_rng(seed)
    vals = rng.geometric(0.45, size=n).clip(1, 40) + 100
    return vals.astype(np.uint8)


class TestCodeLengths:
    def test_kraft_inequality(self):
        freqs = np.bincount(skewed_bytes(50_000), minlength=256)
        lengths = huffman_code_lengths(freqs)
        present = lengths[lengths > 0].astype(int)
        assert sum(2.0 ** -l for l in present) <= 1.0 + 1e-12

    def test_all_present_get_codes(self):
        freqs = np.bincount(skewed_bytes(10_000), minlength=256)
        lengths = huffman_code_lengths(freqs)
        assert np.all((lengths > 0) == (freqs > 0))

    def test_frequent_symbols_get_short_codes(self):
        freqs = np.zeros(256, dtype=np.int64)
        freqs[10] = 1000
        freqs[20] = 10
        freqs[30] = 10
        lengths = huffman_code_lengths(freqs)
        assert lengths[10] < lengths[20]

    def test_single_symbol(self):
        freqs = np.zeros(256, dtype=np.int64)
        freqs[42] = 99
        lengths = huffman_code_lengths(freqs)
        assert lengths[42] == 1
        assert lengths.sum() == 1

    def test_empty(self):
        assert huffman_code_lengths(np.zeros(256, dtype=np.int64)).sum() == 0

    def test_max_length_respected(self):
        # 256 symbols with exponentially growing counts force deep trees.
        freqs = np.array(
            [2**min(i, 40) for i in range(256)], dtype=np.int64
        )
        lengths = huffman_code_lengths(freqs, max_len=12)
        assert lengths.max() <= 12
        present = lengths[lengths > 0].astype(int)
        assert sum(2.0 ** -l for l in present) <= 1.0 + 1e-12

    def test_bad_shape(self):
        with pytest.raises(CodecError):
            huffman_code_lengths(np.zeros(10, dtype=np.int64))

    def test_negative_freqs(self):
        freqs = np.zeros(256, dtype=np.int64)
        freqs[0] = -1
        with pytest.raises(CodecError):
            huffman_code_lengths(freqs)


class TestCanonicalCodes:
    def test_prefix_free(self):
        freqs = np.bincount(skewed_bytes(20_000), minlength=256)
        lengths = huffman_code_lengths(freqs)
        codes = canonical_codes(lengths)
        entries = [
            (int(codes[s]), int(lengths[s]))
            for s in np.flatnonzero(lengths > 0)
        ]
        for code_a, len_a in entries:
            for code_b, len_b in entries:
                if (code_a, len_a) == (code_b, len_b):
                    continue
                shorter, longer = sorted(
                    [(code_a, len_a), (code_b, len_b)], key=lambda e: e[1]
                )
                assert (longer[0] >> (longer[1] - shorter[1])) != shorter[0]

    def test_lut_covers_all_codes(self):
        freqs = np.bincount(skewed_bytes(5_000), minlength=256)
        lengths = huffman_code_lengths(freqs)
        lut_sym, lut_len = build_decode_lut(lengths)
        codes = canonical_codes(lengths)
        for sym in np.flatnonzero(lengths > 0):
            ell = int(lengths[sym])
            peek = int(codes[sym]) << (16 - ell)
            assert lut_sym[peek] == sym
            assert lut_len[peek] == ell


class TestRoundTrip:
    @pytest.mark.parametrize("n", [0, 1, 5, 100, 4096, 4097, 20_000])
    def test_sizes(self, n):
        data = skewed_bytes(n, seed=n)
        codec = HuffmanCodec()
        stream = codec.encode(data)
        assert np.array_equal(codec.decode(stream), data)

    def test_uniform_bytes(self, rng):
        data = rng.integers(0, 256, 10_000).astype(np.uint8)
        codec = HuffmanCodec()
        assert np.array_equal(codec.decode(codec.encode(data)), data)

    def test_single_distinct_symbol(self):
        data = np.full(1000, 7, dtype=np.uint8)
        codec = HuffmanCodec()
        stream = codec.encode(data)
        assert np.array_equal(codec.decode(stream), data)
        # One bit per symbol plus container overhead.
        assert stream.payload.nbytes <= 1000 // 8 + 8

    def test_small_chunks(self):
        codec = HuffmanCodec(chunk_symbols=64)
        data = skewed_bytes(1000, seed=3)
        assert np.array_equal(codec.decode(codec.encode(data)), data)

    def test_compression_ratio_on_skewed(self):
        data = skewed_bytes(100_000, seed=9)
        stream = HuffmanCodec().encode(data)
        assert stream.ratio > 2.0  # low-entropy stream compresses well

    def test_header_counted(self):
        stream = HuffmanCodec().encode(skewed_bytes(1000))
        assert stream.header_nbytes >= 256
        assert stream.compressed_nbytes > stream.payload.nbytes

    def test_corrupt_stream_detected(self):
        codec = HuffmanCodec()
        data = skewed_bytes(5000, seed=4)
        stream = codec.encode(data)
        # Point a chunk offset into garbage territory.
        stream.meta["chunk_bit_offsets"] = (
            stream.meta["chunk_bit_offsets"] + 1
        )
        decoded_or_error = None
        try:
            decoded_or_error = codec.decode(stream)
        except CodecError:
            return
        assert not np.array_equal(decoded_or_error, data)

    def test_non_u8_rejected(self):
        with pytest.raises(CodecError):
            HuffmanCodec().encode(np.zeros(4, dtype=np.int32))

    def test_symbol_lengths(self):
        data = skewed_bytes(2000, seed=5)
        lengths = HuffmanCodec().symbol_lengths(data)
        assert lengths.shape == data.shape
        assert lengths.min() >= 1

    @given(st.binary(min_size=0, max_size=3000))
    def test_roundtrip_property(self, raw):
        data = np.frombuffer(raw, dtype=np.uint8).copy()
        codec = HuffmanCodec(chunk_symbols=256)
        assert np.array_equal(codec.decode(codec.encode(data)), data)
