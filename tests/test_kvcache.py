"""Tests for the paged KV-cache block allocator."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import CapacityError, SchedulingError
from repro.serving.kvcache import KVCacheSpec, PagedKVCache
from repro.serving.models import get_model


def make_cache(n_blocks: int = 64) -> PagedKVCache:
    spec = KVCacheSpec(n_layers=2, kv_heads=2, head_dim=8, block_size=16)
    return PagedKVCache(spec, capacity_bytes=n_blocks * spec.bytes_per_block)


class TestSpec:
    def test_bytes_per_token(self):
        spec = KVCacheSpec(n_layers=32, kv_heads=8, head_dim=128)
        # 2 x 32 x 8 x 128 x 2 = 131072 (LLaMA-8B, §6.5).
        assert spec.bytes_per_token == 131072

    def test_for_model_tp_splits_heads(self):
        model = get_model("llama3.1-70b")
        spec = KVCacheSpec.for_model(model, tensor_parallel=4)
        assert spec.kv_heads == 2

    def test_for_model_pp_splits_layers(self):
        model = get_model("llama3.1-70b")
        spec = KVCacheSpec.for_model(model, pipeline_parallel=4)
        assert spec.n_layers == 20

    def test_block_bytes(self):
        spec = KVCacheSpec(n_layers=1, kv_heads=1, head_dim=4, block_size=16)
        assert spec.bytes_per_block == 16 * spec.bytes_per_token


class TestAllocation:
    def test_lifecycle(self):
        kv = make_cache()
        kv.allocate(1, 20)  # 2 blocks
        assert kv.sequence_length(1) == 20
        assert kv.used_blocks == 2
        kv.append_token(1)
        assert kv.sequence_length(1) == 21
        assert kv.used_blocks == 2  # fits in slack
        kv.append_token(1, 12)
        assert kv.used_blocks == 3
        freed = kv.free(1)
        assert freed == 3
        assert kv.used_blocks == 0

    def test_block_table(self):
        kv = make_cache()
        kv.allocate(5, 33)
        assert len(kv.block_table(5)) == 3

    def test_capacity_exhaustion(self):
        kv = make_cache(n_blocks=4)
        kv.allocate(1, 16 * 4)
        with pytest.raises(CapacityError):
            kv.append_token(1)

    def test_can_allocate(self):
        kv = make_cache(n_blocks=4)
        assert kv.can_allocate(None, 64)
        assert not kv.can_allocate(None, 65)

    def test_blocks_needed(self):
        kv = make_cache()
        kv.allocate(1, 16)
        assert kv.blocks_needed(1, 1) == 1
        assert kv.blocks_needed(1, 16) == 1
        assert kv.blocks_needed(1, 17) == 2

    def test_double_allocate_rejected(self):
        kv = make_cache()
        kv.allocate(1, 4)
        with pytest.raises(SchedulingError):
            kv.allocate(1, 4)

    def test_unknown_sequence_rejected(self):
        kv = make_cache()
        with pytest.raises(SchedulingError):
            kv.append_token(9)
        with pytest.raises(SchedulingError):
            kv.free(9)
        with pytest.raises(SchedulingError):
            kv.sequence_length(9)

    def test_zero_token_alloc_rejected(self):
        kv = make_cache()
        with pytest.raises(SchedulingError):
            kv.allocate(1, 0)

    def test_too_small_capacity(self):
        spec = KVCacheSpec(n_layers=2, kv_heads=2, head_dim=8)
        with pytest.raises(CapacityError):
            PagedKVCache(spec, capacity_bytes=10)

    def test_utilization(self):
        kv = make_cache(n_blocks=10)
        kv.allocate(1, 16 * 5)
        assert kv.utilization == pytest.approx(0.5)

    def test_blocks_reused_after_free(self):
        kv = make_cache(n_blocks=4)
        kv.allocate(1, 64)
        kv.free(1)
        kv.allocate(2, 64)
        assert kv.used_blocks == 4


class TestPropertyBased:
    @given(st.lists(
        st.tuples(st.sampled_from(["alloc", "append", "free"]),
                  st.integers(0, 5), st.integers(1, 40)),
        max_size=60,
    ))
    def test_accounting_invariant(self, ops):
        kv = make_cache(n_blocks=32)
        live: dict[int, int] = {}
        for op, seq, n in ops:
            try:
                if op == "alloc" and seq not in live:
                    kv.allocate(seq, n)
                    live[seq] = n
                elif op == "append" and seq in live:
                    kv.append_token(seq, n)
                    live[seq] += n
                elif op == "free" and seq in live:
                    kv.free(seq)
                    del live[seq]
            except CapacityError:
                continue
            # Invariant: free + used == total; per-seq lengths tracked.
            assert kv.free_blocks + kv.used_blocks == kv.n_blocks
            for s, tokens in live.items():
                assert kv.sequence_length(s) == tokens
        expected_used = sum(-(-t // 16) for t in live.values())
        assert kv.used_blocks == expected_used
