"""Tests for the attention kernel cost models."""

import pytest

from repro.errors import ConfigError
from repro.gpu.specs import get_gpu
from repro.kernels.attention import (
    eager_attention_decode,
    eager_attention_prefill,
    flash_attention_prefill,
    paged_attention_decode,
)

G = get_gpu("rtx4090")
HEADS, KV, HD = 32, 8, 128


class TestPagedDecode:
    def test_linear_in_context(self):
        t1 = paged_attention_decode(G, 32, 512, HEADS, KV, HD).time_s
        t2 = paged_attention_decode(G, 32, 2048, HEADS, KV, HD).time_s
        assert 3.0 < t2 / t1 < 4.5

    def test_linear_in_batch(self):
        t1 = paged_attention_decode(G, 8, 1024, HEADS, KV, HD).time_s
        t2 = paged_attention_decode(G, 32, 1024, HEADS, KV, HD).time_s
        assert 3.0 < t2 / t1 < 4.5

    def test_memory_bound(self):
        p = paged_attention_decode(G, 32, 1024, HEADS, KV, HD)
        assert p.details["mem_time_s"] > p.details["compute_time_s"]

    def test_kv_traffic_matches_gqa_layout(self):
        p = paged_attention_decode(G, 32, 1024, HEADS, KV, HD)
        expected_kv = 2 * 32 * 1024 * KV * HD * 2
        assert p.traffic.dram_read >= expected_kv

    def test_paper_scale(self):
        # LLaMA-8B decode @ BS32, ctx 1024: ~0.13-0.22 ms per layer on 4090
        # (x32 layers ~ the 3-5 ms attention bucket of Figure 17).
        p = paged_attention_decode(G, 32, 1024, HEADS, KV, HD)
        assert 0.1e-3 < p.time_s < 0.25e-3


class TestFlashPrefill:
    def test_superlinear_in_seq(self):
        t1 = flash_attention_prefill(G, 8, 512, HEADS, KV, HD).time_s
        t2 = flash_attention_prefill(G, 8, 2048, HEADS, KV, HD).time_s
        assert t2 / t1 > 6.0  # quadratic score work dominates

    def test_compute_bound_at_long_seq(self):
        p = flash_attention_prefill(G, 8, 4096, HEADS, KV, HD)
        assert p.details["compute_time_s"] > p.details["mem_time_s"]


class TestEager:
    def test_eager_decode_slower_than_paged(self):
        eager = eager_attention_decode(G, 32, 1024, HEADS, KV, HD)
        paged = paged_attention_decode(G, 32, 1024, HEADS, KV, HD)
        assert eager.time_s > paged.time_s

    def test_eager_prefill_slower_than_flash(self):
        eager = eager_attention_prefill(G, 8, 2048, HEADS, KV, HD)
        flash = flash_attention_prefill(G, 8, 2048, HEADS, KV, HD)
        assert eager.time_s > flash.time_s

    def test_eager_prefill_score_traffic_dominates(self):
        p = eager_attention_prefill(G, 8, 4096, HEADS, KV, HD)
        score_bytes = 4.0 * 8 * HEADS * 4096 * 4096 * 4.0
        assert p.traffic.dram_total > score_bytes * 0.5


class TestValidation:
    def test_head_divisibility(self):
        with pytest.raises(ConfigError):
            paged_attention_decode(G, 8, 128, 30, 8, HD)

    def test_positive_dims(self):
        with pytest.raises(ConfigError):
            flash_attention_prefill(G, 0, 128, HEADS, KV, HD)
