"""Disaggregated serving: conservation across pools, transfer accounting.

The invariants under test (see ``serving/disagg.py``):

* every submitted request is prefilled once, transferred once, and decoded
  to completion — nothing is lost between pools;
* wire bytes equal the prompt's KV footprint divided by the codec ratio;
* the link is a serial FIFO: transfers never overlap and never start
  before their KV is ready;
* an infinite, zero-latency link makes every transfer free, and
  ``mode="colocated"`` bypasses the disaggregated path entirely
  (bit-compatible with :class:`ServingCore`).
"""

import pytest

from repro.errors import CapacityError, ConfigError
from repro.serving.costs import StepBreakdown
from repro.serving.disagg import DisaggregatedCore, resolve_transfer_ratio
from repro.serving.kvcache import KVCacheSpec
from repro.serving.scheduler import Request, SchedulerLimits
from repro.serving.serve import DisaggConfig, ServingConfig, ServingCore

#: Tiny KV geometry: 32 bytes/token, 512-byte 16-token blocks.
SPEC = KVCacheSpec(n_layers=1, kv_heads=1, head_dim=8, block_size=16)


class FlatCostModel:
    """Deterministic toy StepCostModel: time scales with tokens/context."""

    def linear_time(self, n_tokens):
        return (n_tokens * 1e-5, 1, 0.0)

    def attention_time(self, batch, ctx, phase):
        return batch * ctx * 1e-7

    def elementwise_time(self, n_tokens):
        return n_tokens * 1e-7

    def decode_step(self, batch, ctx):
        return StepBreakdown(linear_s=1e-3 + batch * 1e-5 + ctx * 1e-7)

    def prefill_step(self, batch, prompt_len):
        return StepBreakdown(linear_s=1e-3 + batch * prompt_len * 1e-6)

    def mixed_step(self, decode_batch, decode_ctx, prefill_seqs,
                   prefill_tokens):
        return StepBreakdown(
            linear_s=(1e-3 + (decode_batch + prefill_tokens) * 1e-6
                      + decode_ctx * 1e-7)
        )


def core(n_blocks: int, **disagg) -> DisaggregatedCore:
    config = ServingConfig(
        mode="disaggregated",
        disagg=DisaggConfig(**disagg) if disagg else DisaggConfig(),
    )
    return DisaggregatedCore(
        FlatCostModel(), SPEC, n_blocks * SPEC.bytes_per_block, config
    )


def reqs(specs) -> list[Request]:
    return [
        Request(i, prompt_len=p, max_new_tokens=o, arrival_s=a,
                priority=(pr[0] if pr else 0))
        for i, (p, o, a, *pr) in enumerate(specs)
    ]


TRACE = [(24, 12, 0.0), (40, 8, 0.01), (16, 20, 0.02), (64, 6, 0.5),
         (32, 16, 0.55), (20, 10, 1.2)]


class TestConservation:
    """Every prefilled request is eventually transferred and decoded."""

    @pytest.mark.parametrize("replicas", [(1, 1), (2, 2), (1, 3)])
    def test_all_requests_served(self, replicas):
        prefill, decode = replicas
        trace = reqs(TRACE)
        result = core(64, prefill_replicas=prefill,
                      decode_replicas=decode,
                      link_gb_per_s=1e-6).serve(trace)
        assert result.n_requests == len(trace)
        assert result.tokens_generated == sum(o for _, o, *_ in TRACE)
        assert result.transfer.n_transfers == len(trace)
        assert sorted(r.request_id for r in result.transfer.records) == \
            [r.request_id for r in trace]
        for t in result.timings:
            assert t.arrival_s <= t.first_token_s <= t.finish_s
            assert t.finish_s <= result.makespan_s + 1e-12

    def test_transfer_happens_between_prefill_and_decode(self):
        trace = reqs(TRACE)
        result = core(64, link_gb_per_s=1e-6).serve(trace)
        by_id = {t.request_id: t for t in result.timings}
        for rec in result.transfer.records:
            timing = by_id[rec.request_id]
            # KV becomes ready exactly at first-token time (prefill done)
            # and must land before the request can finish decoding.
            assert rec.ready_s == pytest.approx(timing.first_token_s)
            assert rec.ready_s <= rec.start_s <= rec.done_s
            assert rec.done_s <= timing.finish_s

    def test_decode_preemption_still_conserves(self):
        # 4 blocks = 64 token slots; two requests growing to 56 tokens
        # each cannot coexist on one decode replica: preempt-recompute
        # must trigger there and still finish both.
        trace = reqs([(16, 40, 0.0), (16, 40, 0.0)])
        result = core(4).serve(trace)
        assert result.n_preemptions > 0
        assert result.tokens_generated == 80
        assert result.n_requests == 2

    def test_unservable_request_raises_instead_of_dropping(self):
        # Request 0's prompt KV (80 tokens = 5 blocks) can never fit a
        # 4-block replica; silently dropping it (and request 1, stranded
        # behind it by head-of-line blocking) would fake a clean run.
        trace = reqs([(80, 4, 0.0), (16, 4, 0.0)])
        with pytest.raises(CapacityError):
            core(4).serve(trace)

    def test_memoized_costs_fast_forward_matches_stepwise(self):
        # A context-insensitive cost model prices identically whether or
        # not contexts are bucketed, so the memoized run's fast-forwarded
        # decode windows must reproduce the stepwise run's work — same
        # tokens, approximately the same stamps.  The event kernel caps
        # a window at the upstream stages' next event (it cannot see
        # hand-offs that are not scheduled yet), so window boundaries —
        # and with them the iteration count — may shift by a step where
        # the old sequential simulation, which knew every landing time
        # upfront, fast-forwarded straight through.
        decode_step_s = 1e-3

        class ConstCostModel(FlatCostModel):
            def mixed_step(self, decode_batch, decode_ctx, prefill_seqs,
                           prefill_tokens):
                return StepBreakdown(linear_s=decode_step_s)

            def prefill_step(self, batch, prompt_len):
                return StepBreakdown(linear_s=5e-3)

        kv_bytes = 64 * SPEC.bytes_per_block
        exact = DisaggregatedCore(
            ConstCostModel(), SPEC, kv_bytes,
            ServingConfig(mode="disaggregated"),
        ).serve(reqs(TRACE))
        memo = DisaggregatedCore(
            ConstCostModel(), SPEC, kv_bytes,
            ServingConfig(mode="disaggregated", cost_bucket=64),
        ).serve(reqs(TRACE))
        assert memo.tokens_generated == exact.tokens_generated
        assert abs(memo.n_steps - exact.n_steps) <= len(TRACE)
        assert memo.makespan_s == pytest.approx(exact.makespan_s)
        # Fast-forward multiplies step costs where the stepwise loop sums
        # them, and a split window can push an admission one boundary
        # over — stamps agree to within one decode step.
        for m, e in zip(memo.timings, exact.timings):
            assert m.request_id == e.request_id
            assert m.n_tokens == e.n_tokens
            assert m.first_token_s == pytest.approx(e.first_token_s)
            assert abs(m.finish_s - e.finish_s) <= 1.5 * decode_step_s


class TestTransferAccounting:
    def test_bytes_match_kv_size_over_ratio(self):
        trace = reqs(TRACE)
        ratio = 2.0
        result = core(64, link_gb_per_s=1e-6,
                      transfer_ratio=ratio).serve(trace)
        per_token = SPEC.bytes_per_token / ratio
        by_id = {r.request_id: r for r in trace}
        for rec in result.transfer.records:
            assert rec.nbytes == by_id[rec.request_id].prompt_len * per_token
        assert result.transfer.total_bytes == pytest.approx(
            sum(r.prompt_len for r in trace) * per_token
        )
        assert result.transfer.compression_ratio == ratio

    def test_link_is_serial_fifo(self):
        result = core(64, link_gb_per_s=1e-6).serve(reqs(TRACE))
        records = sorted(result.transfer.records, key=lambda r: r.start_s)
        for earlier, later in zip(records, records[1:]):
            assert later.start_s >= earlier.done_s - 1e-12

    def test_infinite_link_is_free(self):
        result = core(64).serve(reqs(TRACE))  # inf GB/s, zero latency
        for rec in result.transfer.records:
            assert rec.wire_s == 0.0
            assert rec.queue_s == 0.0
        assert result.transfer.link_utilization == 0.0

    def test_latency_charged_per_transfer(self):
        latency = 0.125
        result = core(64, link_latency_s=latency).serve(reqs(TRACE))
        for rec in result.transfer.records:
            assert rec.wire_s == pytest.approx(latency)

    def test_compression_shrinks_wire_time_by_ratio(self):
        raw = core(64, link_gb_per_s=1e-6).serve(reqs(TRACE))
        comp = core(64, link_gb_per_s=1e-6,
                    transfer_ratio=2.0).serve(reqs(TRACE))
        assert raw.transfer.total_bytes / comp.transfer.total_bytes == \
            pytest.approx(2.0)
        assert comp.transfer.time.mean_s == pytest.approx(
            raw.transfer.time.mean_s / 2.0
        )
        assert comp.makespan_s <= raw.makespan_s

    def test_ttft_is_pool_local(self):
        """The link never delays the first token (prefill emits it)."""
        fast = core(64).serve(reqs(TRACE))
        slow = core(64, link_gb_per_s=1e-7).serve(reqs(TRACE))
        fast_ttft = {t.request_id: t.ttft_s for t in fast.timings}
        for t in slow.timings:
            assert t.ttft_s == pytest.approx(fast_ttft[t.request_id])
        assert slow.makespan_s > fast.makespan_s


class TestPools:
    def test_pool_stats_reported(self):
        result = core(64, prefill_replicas=2,
                      decode_replicas=3).serve(reqs(TRACE))
        prefill, decode = result.pool("prefill"), result.pool("decode")
        assert prefill.n_replicas == 2 and decode.n_replicas == 3
        assert prefill.n_steps == len(TRACE)
        assert 0.0 < prefill.utilization <= 1.0
        assert 0.0 < decode.utilization <= 1.0
        assert prefill.busy_s > 0 and decode.busy_s > 0
        with pytest.raises(ConfigError):
            result.pool("transfer")

    def test_prefill_never_starts_before_arrival(self):
        # Replica 1 idles past the t=0.1 arrivals and takes one of them;
        # replica 0 then frees at t≈0.051 with the other already queued.
        # Its prefill must start at the arrival (0.1), not the replica's
        # earlier free time — a regression here yields negative TTFT.
        trace = reqs([(50_000, 4, 0.0), (16, 4, 0.1), (16, 4, 0.1)])
        result = core(8192, prefill_replicas=2).serve(trace)
        assert result.n_requests == 3
        for t in result.timings:
            assert t.first_token_s >= t.arrival_s
            assert t.ttft_s >= 0.0

    def test_priority_orders_prefill_queue(self):
        # Both arrive before the single prefill replica frees: the
        # high-priority request must prefill first despite arriving later.
        config = ServingConfig(
            mode="disaggregated", policy="priority",
            disagg=DisaggConfig(),
        )
        low = Request(0, prompt_len=32, max_new_tokens=4, arrival_s=0.0,
                      priority=0)
        high = Request(1, prompt_len=32, max_new_tokens=4, arrival_s=0.0,
                       priority=5)
        dcore = DisaggregatedCore(
            FlatCostModel(), SPEC, 64 * SPEC.bytes_per_block, config
        )
        result = dcore.serve([low, high])
        ttft = {t.request_id: t.first_token_s for t in result.timings}
        assert ttft[1] < ttft[0]

    def test_extra_decode_replicas_shorten_makespan(self):
        # All requests land at once; one replica serializes the KV-bound
        # batches, two split them.
        trace = [(16, 60, 0.0)] * 6
        one = core(12, decode_replicas=1).serve(reqs(trace))
        two = core(12, decode_replicas=2).serve(reqs(trace))
        assert two.makespan_s < one.makespan_s
        assert one.tokens_generated == two.tokens_generated == 360


class TestColocatedCompatibility:
    def test_colocated_mode_is_bit_compatible(self):
        """mode="colocated" must not perturb the plain core's output."""
        trace_a = reqs(TRACE)
        trace_b = reqs(TRACE)
        kv_bytes = 64 * SPEC.bytes_per_block
        plain = ServingCore(
            FlatCostModel(), SPEC, kv_bytes, ServingConfig()
        ).serve(trace_a)
        explicit = ServingCore(
            FlatCostModel(), SPEC, kv_bytes,
            ServingConfig(mode="colocated"),
        ).serve(trace_b)
        assert explicit.makespan_s == plain.makespan_s
        assert explicit.n_steps == plain.n_steps
        assert explicit.timings == plain.timings
        assert explicit.mode == plain.mode == "colocated"
        assert explicit.pools == () and explicit.transfer is None

    def test_core_rejects_colocated_config(self):
        with pytest.raises(ConfigError):
            DisaggregatedCore(
                FlatCostModel(), SPEC, 64 * SPEC.bytes_per_block,
                ServingConfig(mode="colocated"),
            )

    def test_plain_core_rejects_disaggregated_config(self):
        # The mirror guard: a disaggregated config must not silently run
        # colocated with its pool geometry and link costs ignored.
        with pytest.raises(ConfigError):
            ServingCore(
                FlatCostModel(), SPEC, 64 * SPEC.bytes_per_block,
                ServingConfig(mode="disaggregated"),
            )

    def test_result_reports_actual_prefill_mode(self):
        # The prefill pool always runs whole-prompt passes; the result
        # must say so even when the config carries the colocated-only
        # chunked setting.
        config = ServingConfig(
            mode="disaggregated", prefill_mode="chunked",
            disagg=DisaggConfig(),
        )
        result = DisaggregatedCore(
            FlatCostModel(), SPEC, 64 * SPEC.bytes_per_block, config
        ).serve(reqs(TRACE))
        assert result.prefill_mode == "group"

    def test_serve_needs_requests(self):
        with pytest.raises(ConfigError):
            core(64).serve([])


class TestConfigValidation:
    @pytest.mark.parametrize("kwargs", [
        {"prefill_replicas": 0},
        {"decode_replicas": 0},
        {"link_gb_per_s": 0.0},
        {"link_gb_per_s": -1.0},
        {"link_latency_s": -1e-3},
        {"transfer_codec": "zstd"},
        {"transfer_ratio": 0.5},
    ])
    def test_bad_disagg_config(self, kwargs):
        with pytest.raises(ConfigError):
            DisaggConfig(**kwargs)

    def test_bad_mode(self):
        with pytest.raises(ConfigError):
            ServingConfig(mode="sharded")

    def test_codec_ratio_resolution(self):
        none = ServingConfig(mode="disaggregated")
        assert resolve_transfer_ratio(none) == 1.0
        kvcomp = ServingConfig(
            mode="disaggregated",
            disagg=DisaggConfig(transfer_codec="kvcomp"),
        )
        assert resolve_transfer_ratio(kvcomp) > 1.3
        explicit = ServingConfig(
            mode="disaggregated",
            disagg=DisaggConfig(transfer_codec="kvcomp",
                                transfer_ratio=3.0),
        )
        assert resolve_transfer_ratio(explicit) == 3.0
