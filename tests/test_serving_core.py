"""Tests for the event-driven serving core, including preemption paths."""

import pytest

from repro.errors import CapacityError, ConfigError
from repro.gpu.specs import get_gpu
from repro.serving.backends import get_backend
from repro.serving.costs import StepBreakdown
from repro.serving.engine import InferenceEngine
from repro.serving.kvcache import KVCacheSpec
from repro.serving.metrics import SLOTarget
from repro.serving.models import get_model
from repro.serving.scheduler import Request, SchedulerLimits
from repro.serving.serve import ServingConfig, ServingCore

G = get_gpu("rtx4090")
M = get_model("llama3.1-8b")

#: Tiny KV geometry: 512 bytes per 16-token block, capacities in blocks.
SPEC = KVCacheSpec(n_layers=1, kv_heads=1, head_dim=8, block_size=16)


class FlatCostModel:
    """Deterministic toy StepCostModel: time scales with tokens/context."""

    def linear_time(self, n_tokens):
        return (n_tokens * 1e-5, 1, 0.0)

    def attention_time(self, batch, ctx, phase):
        return batch * ctx * 1e-7

    def elementwise_time(self, n_tokens):
        return n_tokens * 1e-7

    def decode_step(self, batch, ctx):
        return StepBreakdown(linear_s=1e-3 + batch * 1e-5 + ctx * 1e-7)

    def prefill_step(self, batch, prompt_len):
        return StepBreakdown(linear_s=1e-3 + batch * prompt_len * 1e-6)

    def mixed_step(self, decode_batch, decode_ctx, prefill_seqs,
                   prefill_tokens):
        return StepBreakdown(
            linear_s=(1e-3 + (decode_batch + prefill_tokens) * 1e-6
                      + decode_ctx * 1e-7)
        )


def core(n_blocks: int, **cfg) -> ServingCore:
    return ServingCore(
        FlatCostModel(), SPEC, n_blocks * SPEC.bytes_per_block,
        ServingConfig(**cfg) if cfg else None,
    )


def reqs(specs) -> list[Request]:
    return [
        Request(i, prompt_len=p, max_new_tokens=o, arrival_s=a)
        for i, (p, o, a) in enumerate(specs)
    ]


def assert_conserved_and_monotone(result, trace):
    """Token conservation plus per-request monotone clocks."""
    assert result.n_requests == len(trace)
    assert result.tokens_generated == sum(r.max_new_tokens for r in trace)
    assert len(result.timings) == len(trace)
    for t in result.timings:
        assert t.arrival_s <= t.first_token_s <= t.finish_s
        assert t.finish_s <= result.makespan_s + 1e-12
    assert result.makespan_s > 0


class TestContinuousPreemption:
    """Continuous-mode preempt-and-recompute (chunked and group modes)."""

    @pytest.mark.parametrize("mode", ["chunked", "group"])
    def test_preempt_recompute_conserves_tokens(self, mode):
        # 4 blocks = 64 token slots; two requests each growing to 56 tokens
        # cannot coexist to the end: one must be evicted and recomputed.
        trace = reqs([(16, 40, 0.0), (16, 40, 0.0)])
        result = core(4, prefill_mode=mode).serve(trace)
        assert result.n_preemptions >= 1
        assert_conserved_and_monotone(result, trace)

    @pytest.mark.parametrize("mode", ["chunked", "group"])
    def test_multi_round_preemption(self, mode):
        # Four requests fighting over 6 blocks: repeated evictions, and
        # every token still comes out.
        trace = reqs([(16, 40, 0.0)] * 4)
        result = core(6, prefill_mode=mode).serve(trace)
        assert result.n_preemptions >= 2
        assert_conserved_and_monotone(result, trace)

    def test_preempted_request_keeps_first_token_stamp(self):
        trace = reqs([(16, 40, 0.0), (16, 40, 0.0)])
        result = core(4, prefill_mode="chunked").serve(trace)
        # TTFT must reflect the first prefill, not the recompute.
        for t in result.timings:
            assert t.first_token_s < t.finish_s

    def test_last_request_overflow_raises(self):
        # A single sequence larger than the whole cache cannot be saved by
        # preemption.
        trace = reqs([(16, 80, 0.0)])  # final ctx 96 > 64 slots
        with pytest.raises(CapacityError):
            core(4).serve(trace)

    def test_group_mode_readmits_over_budget_context(self):
        # A preempted request whose accumulated context exceeds
        # max_batched_tokens must still be re-admittable in group mode —
        # otherwise it (and everything behind it) is silently stranded.
        limits = SchedulerLimits(max_num_seqs=8, max_batched_tokens=256)
        trace = reqs([(100, 400, 0.0), (100, 400, 0.0)])
        result = core(40, prefill_mode="group", limits=limits).serve(trace)
        assert result.n_preemptions >= 1
        assert_conserved_and_monotone(result, trace)

    def test_preemption_disabled_raises_instead(self):
        trace = reqs([(16, 40, 0.0), (16, 40, 0.0)])
        with pytest.raises(CapacityError):
            core(4, preemption=False).serve(trace)

    def test_makespan_clock_monotone_across_modes(self):
        for mode in ("chunked", "group"):
            trace = reqs([(16, 8, i * 0.01) for i in range(8)])
            result = core(64, prefill_mode=mode).serve(trace)
            assert_conserved_and_monotone(result, trace)


class TestChunkedPrefill:
    def test_long_prompt_is_chunked_not_starved(self):
        # A prompt far above max_batched_tokens must still be admitted and
        # prefilled across several iterations.
        limits = SchedulerLimits(max_num_seqs=4, max_batched_tokens=64)
        trace = reqs([(300, 4, 0.0), (16, 4, 0.0)])
        result = core(64, prefill_mode="chunked", limits=limits).serve(trace)
        assert result.n_requests == 2
        assert result.n_steps >= 300 // 64

    def test_decode_prioritised_over_prefill(self):
        # With a shared budget, a running decode keeps making progress
        # while a long prompt prefills chunk by chunk.
        limits = SchedulerLimits(max_num_seqs=4, max_batched_tokens=32)
        trace = reqs([(16, 30, 0.0), (200, 4, 0.01)])
        result = core(64, prefill_mode="chunked", limits=limits).serve(trace)
        short, long_ = result.timings[0], result.timings[1]
        assert short.finish_s < long_.finish_s
        assert_conserved_and_monotone(result, trace)

    def test_empty_trace_rejected(self):
        with pytest.raises(ConfigError):
            core(4).serve([])


class TestFastForward:
    def test_bucketed_run_matches_stepwise_tokens(self):
        # Fast-forward (bucketed) must serve exactly the same tokens and
        # requests as exact stepping; clocks may drift by the bucket bias.
        spec = [(16, 200, i * 0.001) for i in range(6)]
        exact = core(256, prefill_mode="chunked", cost_bucket=0).serve(
            reqs(spec)
        )
        fast = core(256, prefill_mode="chunked", cost_bucket=64).serve(
            reqs(spec)
        )
        assert fast.tokens_generated == exact.tokens_generated
        assert fast.n_requests == exact.n_requests
        assert fast.n_steps == exact.n_steps
        assert fast.makespan_s == pytest.approx(exact.makespan_s, rel=0.05)
        assert fast.makespan_s >= exact.makespan_s  # buckets round up

    def test_fast_forward_respects_arrivals(self):
        # A late arrival must still be admitted mid-decode.
        trace = reqs([(16, 400, 0.0), (16, 16, 0.2)])
        fast = core(256, prefill_mode="chunked", cost_bucket=64).serve(trace)
        assert fast.n_requests == 2
        late = fast.timings[1]
        assert late.arrival_s <= late.first_token_s

    def test_cache_hits_grow_across_fast_forward_windows(self):
        # Bucketed serving memoizes step prices; arrivals break decode
        # windows, and the re-priced windows revisit ctx buckets the
        # earlier ones already paid for — so hits must accumulate.
        c = core(256, prefill_mode="chunked", cost_bucket=64)
        info = c.costs.cache_info()
        assert info["mixed"] == {"hits": 0, "misses": 0, "size": 0}
        c.serve(reqs([(16, 200, i * 0.01) for i in range(8)]))
        info = c.costs.cache_info()
        assert info["mixed"]["hits"] > 0
        assert info["mixed"]["size"] == info["mixed"]["misses"] > 0
        # Every priced entry is a decode/prefill mix: the dedicated
        # decode/prefill caches stay untouched by the serving core.
        assert info["decode"]["misses"] == 0


class TestRealEnginePreemption:
    """The engine-level recompute paths with the real cost model."""

    def test_run_batch_recursion_multi_wave(self):
        # Batch far beyond KV capacity: the recursion must spill into at
        # least three waves and still account every token.
        eng = InferenceEngine(M, G, get_backend("vllm"), gpu_mem_util=0.82)
        res = eng.run(96, 128, 2048)
        assert res.n_waves >= 3
        assert res.effective_batch < 96
        assert res.throughput_tok_s == pytest.approx(
            96 * 2048 / res.total_s
        )
        # The overflowing run takes longer than one fitting wave of the
        # same shape (it contains that wave plus the recomputed remainder).
        fits = eng.run(res.effective_batch, 128, 2048)
        assert res.total_s > fits.total_s

    def test_continuous_preemption_real_engine(self):
        # Small mem util so the trace overflows KV mid-decode.
        eng = InferenceEngine(M, G, get_backend("vllm"), gpu_mem_util=0.82)
        cap = eng.plan.kv_tokens
        n = 6
        out = int(cap // n)  # each request wants ~1/n of capacity + prompt
        trace = [
            Request(i, prompt_len=256, max_new_tokens=out, arrival_s=0.0)
            for i in range(n)
        ]
        result = eng.serve(trace, config=ServingConfig(
            prefill_mode="chunked",
            slo=SLOTarget(ttft_s=2.0, tpot_s=0.5),
        ))
        assert result.n_preemptions >= 1
        assert result.n_requests == n
        assert result.tokens_generated == n * out
        for t in result.timings:
            assert t.arrival_s <= t.first_token_s <= t.finish_s

    def test_facade_matches_group_core(self):
        trace = [
            Request(i, prompt_len=64, max_new_tokens=16, arrival_s=i * 0.01)
            for i in range(8)
        ]
        eng = InferenceEngine(M, G, get_backend("zipserv"))
        a = eng.run_continuous(
            [Request(r.request_id, r.prompt_len, r.max_new_tokens,
                     arrival_s=r.arrival_s) for r in trace]
        )
        b = eng.serve(
            trace, config=ServingConfig(policy="fcfs", prefill_mode="group")
        )
        assert a.makespan_s == pytest.approx(b.makespan_s)
        assert a.n_steps == b.n_steps


class TestPolicies:
    def test_priority_cuts_urgent_ttft_under_contention(self):
        limits = SchedulerLimits(max_num_seqs=2, max_batched_tokens=64)
        def trace():
            out = []
            for i in range(12):
                urgent = i % 3 == 0
                out.append(Request(
                    i, prompt_len=32, max_new_tokens=16,
                    arrival_s=i * 0.0005,
                    priority=1 if urgent else 0,
                    tenant="chat" if urgent else "batch",
                ))
            return out
        fcfs = core(16, policy="fcfs", limits=limits).serve(trace())
        prio = core(16, policy="priority", limits=limits).serve(trace())
        mean = lambda xs: sum(xs) / len(xs)
        fcfs_chat = mean([t.ttft_s for t in fcfs.tenant_timings("chat")])
        prio_chat = mean([t.ttft_s for t in prio.tenant_timings("chat")])
        assert prio_chat < fcfs_chat

    def test_sjf_prefers_short_jobs(self):
        # All three waiting at time zero with one execution slot: FCFS
        # runs the long head first, SJF reorders the shorts ahead of it.
        limits = SchedulerLimits(max_num_seqs=1, max_batched_tokens=512)
        def trace():
            return [
                Request(0, prompt_len=64, max_new_tokens=200, arrival_s=0.0),
                Request(1, prompt_len=16, max_new_tokens=8, arrival_s=0.0),
                Request(2, prompt_len=16, max_new_tokens=8, arrival_s=0.0),
            ]
        fcfs = core(64, policy="fcfs", limits=limits).serve(trace())
        sjf = core(64, policy="sjf", limits=limits).serve(trace())
        mean_short = lambda r: sum(
            t.e2e_s for t in r.timings if t.request_id != 0
        ) / 2
        assert mean_short(sjf) < mean_short(fcfs)

    def test_aging_unstarves_batch_tenant_under_sustained_chat(self):
        # One execution slot and a sustained stream of priority-1 chat
        # arrivals: plain priority parks the batch request until the chat
        # stream dries up; under aging its accumulated waiting time buys
        # admission ahead of chat requests arriving after the crossover
        # (1 / aging_rate seconds, here 10 ms on the toy clock).
        from repro.serving.scheduler import AgingPriorityPolicy

        limits = SchedulerLimits(max_num_seqs=1, max_batched_tokens=64)

        def trace():
            out = [Request(
                0, prompt_len=32, max_new_tokens=8, arrival_s=0.0,
                priority=0, tenant="batch",
            ), Request(
                1, prompt_len=32, max_new_tokens=8, arrival_s=0.0,
                priority=1, tenant="chat",
            )]
            for i in range(2, 15):
                out.append(Request(
                    i, prompt_len=32, max_new_tokens=8,
                    arrival_s=i * 0.002, priority=1, tenant="chat",
                ))
            return out

        plain = core(16, policy="priority", limits=limits).serve(trace())
        aged = core(
            16, policy=AgingPriorityPolicy(aging_rate=100.0), limits=limits,
        ).serve(trace())
        batch_ttft = lambda r: r.tenant_timings("batch")[0].ttft_s
        assert batch_ttft(aged) < batch_ttft(plain)
        # Everyone is still served either way (conservation).
        assert plain.n_requests == aged.n_requests == 15
        assert aged.policy == "priority_aging"

    def test_all_policies_serve_everything(self):
        trace_spec = [(32, 8, i * 0.01) for i in range(10)]
        for policy in ("fcfs", "priority", "priority_aging", "sjf"):
            result = core(16, policy=policy).serve(reqs(trace_spec))
            assert result.n_requests == 10
            assert result.policy == policy


class TestStrandedRequests:
    """Unservable queued work raises instead of silently vanishing."""

    @pytest.mark.parametrize("mode", ["chunked", "group"])
    def test_oversized_prompt_raises(self, mode):
        # 80-token prompt KV (5 blocks) can never fit a 4-block cache;
        # the request behind it is head-of-line blocked.  Both loops must
        # surface the stranding as CapacityError, matching the
        # disaggregated decode pool (tests/test_disagg.py).
        trace = reqs([(80, 4, 0.0), (16, 4, 0.0)])
        with pytest.raises(CapacityError):
            core(4, prefill_mode=mode).serve(trace)
