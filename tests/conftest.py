"""Shared pytest configuration."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

# Keep property-based suites fast and deterministic in CI.
settings.register_profile(
    "repro",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    derandomize=True,
)
settings.load_profile("repro")


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for ad-hoc randomness inside tests."""
    return np.random.default_rng(1234)


@pytest.fixture
def small_weights() -> np.ndarray:
    """A small Gaussian BF16 matrix exercising padding (non-64 multiples)."""
    from repro.bf16 import gaussian_bf16_matrix

    return gaussian_bf16_matrix(100, 130, sigma=0.02, seed=7)


@pytest.fixture
def aligned_weights() -> np.ndarray:
    """A BlockTile-aligned Gaussian BF16 matrix."""
    from repro.bf16 import gaussian_bf16_matrix

    return gaussian_bf16_matrix(128, 192, sigma=0.02, seed=11)
