"""Tests for the software-pipeline event simulation and codec efficiencies."""

import pytest

from repro.analysis.calibration import (
    BASELINE_DECODE_BW_FRAC,
    decode_cycles_per_element,
)
from repro.analysis.codec_efficiency import (
    dfloat11_efficiency,
    dietgpu_efficiency,
    efficiency_report,
    tcatbe_efficiency,
)
from repro.errors import ConfigError
from repro.gpu.pipeline_sim import (
    simulate_zipgemm_pipeline,
    zipgemm_cta_pipeline,
)
from repro.gpu.specs import get_gpu


class TestPipelineSim:
    def test_steady_state_hits_bottleneck_bound(self):
        report = simulate_zipgemm_pipeline(256, 4, 100.0, 30.0, 40.0)
        assert report.overlap_efficiency > 0.97

    def test_busy_accounting(self):
        report = simulate_zipgemm_pipeline(10, 4, 100.0, 30.0, 40.0)
        assert report.copy_busy == 1000.0
        assert report.decode_busy == 10 * 4 * 30.0
        assert report.mma_busy == 10 * 4 * 40.0

    def test_single_buffer_serialises(self):
        double = simulate_zipgemm_pipeline(64, 4, 100.0, 30.0, 40.0)
        single = simulate_zipgemm_pipeline(
            64, 4, 100.0, 30.0, 40.0, n_buffers=1
        )
        assert single.total_cycles > 1.2 * double.total_cycles

    def test_more_buffers_never_slower(self):
        two = simulate_zipgemm_pipeline(64, 4, 100.0, 30.0, 40.0, n_buffers=2)
        four = simulate_zipgemm_pipeline(64, 4, 100.0, 30.0, 40.0, n_buffers=4)
        assert four.total_cycles <= two.total_cycles + 1e-9

    def test_decode_hidden_when_cheap(self):
        cheap = simulate_zipgemm_pipeline(128, 4, 100.0, 5.0, 40.0)
        free = simulate_zipgemm_pipeline(128, 4, 100.0, 0.0, 40.0)
        # Decode cheaper than mma: hiding it costs (almost) nothing.
        assert cheap.total_cycles <= free.total_cycles * 1.05

    def test_decode_bound_when_expensive(self):
        report = simulate_zipgemm_pipeline(128, 4, 100.0, 80.0, 40.0)
        assert report.bottleneck_bound == report.decode_busy
        assert report.overlap_efficiency > 0.95

    def test_dependencies_respected(self):
        report = simulate_zipgemm_pipeline(
            3, 2, 50.0, 10.0, 20.0, keep_events=True
        )
        by_key = {
            (e.stage, e.tile, e.slice_index): e for e in report.events
        }
        for tile in range(3):
            copy = by_key[("copy", tile, -1)]
            for s in range(2):
                decode = by_key[("decode", tile, s)]
                mma = by_key[("mma", tile, s)]
                assert decode.start >= copy.end - 1e-9
                assert mma.start >= decode.end - 1e-9

    def test_validation(self):
        with pytest.raises(ConfigError):
            simulate_zipgemm_pipeline(0, 4, 1.0, 1.0, 1.0)
        with pytest.raises(ConfigError):
            simulate_zipgemm_pipeline(4, 4, 1.0, 1.0, 1.0, n_buffers=0)
        with pytest.raises(ConfigError):
            simulate_zipgemm_pipeline(4, 4, -1.0, 1.0, 1.0)


class TestCtaPipeline:
    def test_consumer_gpu_copy_bound(self):
        report = zipgemm_cta_pipeline(
            get_gpu("rtx4090"), 4096, 32, 0.71, decode_cycles_per_element()
        )
        assert report.copy_busy > report.decode_busy > report.mma_busy
        assert report.overlap_efficiency > 0.96

    def test_datacenter_gpu_decode_bound(self):
        # §7: abundant HBM + lower clocks flip the bottleneck to decode.
        report = zipgemm_cta_pipeline(
            get_gpu("a100"), 4096, 32, 0.71, decode_cycles_per_element()
        )
        assert report.decode_busy > report.copy_busy

    def test_k_alignment_required(self):
        with pytest.raises(ConfigError):
            zipgemm_cta_pipeline(get_gpu("l40s"), 100, 32, 0.71, 0.25)


class TestCodecEfficiency:
    def test_ordering_matches_paper(self):
        report = efficiency_report()
        assert report["tcatbe"] > report["dfloat11"] > report["dietgpu"]

    def test_bands(self):
        assert tcatbe_efficiency().relative_efficiency == 1.0
        assert 0.45 < dfloat11_efficiency().relative_efficiency < 0.95
        assert 0.30 < dietgpu_efficiency().relative_efficiency < 0.60

    def test_dietgpu_tracks_calibration(self):
        # Paper-derived relative target: 0.437 / 0.88 ~ 0.50.
        target = (
            BASELINE_DECODE_BW_FRAC["dietgpu"] / 0.88
        )
        derived = dietgpu_efficiency().relative_efficiency
        assert derived == pytest.approx(target, abs=0.15)

    def test_divergence_grows_with_entropy(self):
        smooth = dfloat11_efficiency(sigma=0.015, seed=1)
        assert 0.0 < smooth.simt_efficiency <= 1.0

    def test_experiment_registered(self):
        from repro.experiments import run_experiment

        result = run_experiment("tab_pipeline", quick=True)
        assert result.summary["min_overlap_efficiency"] > 0.96
        assert (result.summary["single_buffer_eff"]
                < result.summary["double_buffer_eff"])
