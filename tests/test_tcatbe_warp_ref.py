"""Tests for the per-lane Algorithm-2 reference decoder."""

import numpy as np
import pytest

from repro.bf16 import gaussian_bf16_matrix
from repro.tcatbe import compress, decompress_tile
from repro.tcatbe.layout import FRAG_ELEMS
from repro.tcatbe.warp_ref import (
    WARP_SIZE,
    average_instruction_mix,
    decode_tile_warp,
)


@pytest.fixture
def matrix():
    return compress(gaussian_bf16_matrix(80, 90, sigma=0.02, seed=31))


class TestCorrectness:
    def test_matches_vectorised_decoder_all_tiles(self, matrix):
        for t in range(matrix.n_tiles):
            ref = decode_tile_warp(matrix, t)
            assert np.array_equal(ref.values, decompress_tile(matrix, t)), t

    def test_counts_match_buffers(self, matrix):
        ref = decode_tile_warp(matrix, 0)
        assert ref.high_count + ref.low_count == FRAG_ELEMS

    def test_all_fallback_tile(self):
        w = np.zeros((64, 64), dtype=np.uint16)  # exponent 0 -> all fallback
        m = compress(w)
        ref = decode_tile_warp(m, 0)
        assert ref.high_count == 0
        assert np.array_equal(ref.values, np.zeros(FRAG_ELEMS, np.uint16))

    def test_all_high_tile(self):
        w = np.full((64, 64), np.uint16(120 << 7), dtype=np.uint16)
        m = compress(w)
        ref = decode_tile_warp(m, 0)
        assert ref.low_count == 0


class TestInstructionAccounting:
    def test_fixed_count_instructions(self, matrix):
        ref = decode_tile_warp(matrix, 0)
        counts = ref.instructions.counts
        # Every element performs exactly one POPC (dynamic addressing) and
        # one shared-memory load (value fetch).
        assert counts["POPC"] == FRAG_ELEMS
        assert counts["LDS"] == FRAG_ELEMS
        # One IMAD per element for p = 2*lane + half.
        assert counts["IMAD"] == FRAG_ELEMS

    def test_decode_is_uniform_across_tiles(self, matrix):
        # Fixed-length decoding: instruction totals vary only with the
        # high/low mix, never with symbol values (no data-dependent loops).
        totals = set()
        for t in range(min(8, matrix.n_tiles)):
            ref = decode_tile_warp(matrix, t)
            # High path: LDS + 3 SHF + 3 LOP3 + IADD + PRMT = 9 ops; low
            # path: IADD + LDS = 2 ops; difference of 7 per high element.
            expected_variable = 7 * ref.high_count
            totals.add(ref.instructions.total - expected_variable)
        assert len(totals) == 1

    def test_instructions_per_element_band(self, matrix):
        ref = decode_tile_warp(matrix, 0)
        # ~17 integer/logic ops per element (Figure 12a scale).
        assert 10 < ref.instructions_per_element < 25

    def test_average_mix_aggregates(self, matrix):
        mix = average_instruction_mix(matrix, max_tiles=4)
        single = decode_tile_warp(matrix, 0).instructions.total
        assert mix.total > 3 * single * 0.8

    def test_warp_size_constant(self):
        assert WARP_SIZE == 32
