"""Tests for the TCA-TBE tiling hierarchy."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ShapeError
from repro.tcatbe.layout import (
    BLOCK_TILE,
    FRAG_ELEMS,
    FRAG_TILE,
    TC_TILE,
    TILES_PER_BLOCK,
    from_tiles,
    lane_positions,
    pad_matrix,
    padded_shape,
    position_rc,
    tile_base_coords,
    to_tiles,
)


class TestPadding:
    def test_padded_shape(self):
        assert padded_shape(1, 1) == (64, 64)
        assert padded_shape(64, 64) == (64, 64)
        assert padded_shape(65, 128) == (128, 128)

    def test_padded_shape_invalid(self):
        with pytest.raises(ShapeError):
            padded_shape(0, 5)

    def test_pad_matrix_values(self):
        m = np.arange(6, dtype=np.uint16).reshape(2, 3)
        padded = pad_matrix(m, 0x1234)
        assert padded.shape == (64, 64)
        assert np.array_equal(padded[:2, :3], m)
        assert padded[2, 0] == 0x1234
        assert padded[0, 3] == 0x1234

    def test_pad_noop_when_aligned(self):
        m = np.zeros((64, 128), dtype=np.uint16)
        assert pad_matrix(m, 1) is m


class TestTileView:
    def test_roundtrip_aligned(self, aligned_weights):
        padded = pad_matrix(aligned_weights, 0)
        tiles = to_tiles(padded)
        assert tiles.shape == (
            padded.size // FRAG_ELEMS, FRAG_ELEMS
        )
        assert np.array_equal(from_tiles(tiles, padded.shape), padded)

    def test_rejects_unaligned(self):
        with pytest.raises(ShapeError):
            to_tiles(np.zeros((60, 64), dtype=np.uint16))
        with pytest.raises(ShapeError):
            from_tiles(np.zeros((1, 64), dtype=np.uint16), (60, 64))

    def test_tile_count(self):
        tiles = to_tiles(np.zeros((128, 64), dtype=np.uint16))
        assert tiles.shape[0] == 2 * TILES_PER_BLOCK

    def test_from_tiles_shape_check(self):
        with pytest.raises(ShapeError):
            from_tiles(np.zeros((3, 64), dtype=np.uint16), (64, 64))

    def test_tiles_match_coords(self):
        # Row t of to_tiles must equal the row-major flattening of the 8x8
        # region at tile_base_coords[t].
        m = np.arange(128 * 128, dtype=np.uint16).reshape(128, 128)
        tiles = to_tiles(m)
        coords = tile_base_coords(128, 128)
        for t in (0, 1, 2, 3, 17, 63, 64, 255):
            r, c = coords[t]
            region = m[r:r + FRAG_TILE, c:c + FRAG_TILE].reshape(-1)
            assert np.array_equal(tiles[t], region), f"tile {t}"

    def test_fragtile_column_major_within_tensor_core_tile(self):
        # Within a 16x16 TensorCoreTile the four FragTiles must appear in
        # Ra0..Ra3 order: (0,0), (8,0), (0,8), (8,8).
        coords = tile_base_coords(64, 64)
        first_four = [tuple(coords[i]) for i in range(4)]
        assert first_four == [(0, 0), (8, 0), (0, 8), (8, 8)]

    def test_tensor_core_tiles_row_major_within_block(self):
        coords = tile_base_coords(64, 64)
        # Tiles 4..7 are the second TensorCoreTile: one TC-tile to the right.
        assert tuple(coords[4]) == (0, 16)

    def test_blocktiles_row_major(self):
        coords = tile_base_coords(64, 128)
        assert tuple(coords[TILES_PER_BLOCK]) == (0, 64)

    @given(st.integers(1, 3), st.integers(1, 3), st.integers(0, 2**16 - 1))
    def test_roundtrip_property(self, mb, kb, fill):
        shape = (mb * BLOCK_TILE, kb * BLOCK_TILE)
        rng = np.random.default_rng(fill)
        m = rng.integers(0, 2**16, shape).astype(np.uint16)
        assert np.array_equal(from_tiles(to_tiles(m), shape), m)


class TestFragmentOwnership:
    def test_lane_positions(self):
        assert lane_positions(0) == (0, 1)
        assert lane_positions(19) == (38, 39)
        assert lane_positions(31) == (62, 63)

    def test_lane_positions_bounds(self):
        with pytest.raises(ValueError):
            lane_positions(32)

    def test_position_rc(self):
        assert position_rc(0) == (0, 0)
        assert position_rc(38) == (4, 6)
        assert position_rc(63) == (7, 7)
        with pytest.raises(ValueError):
            position_rc(64)

    def test_all_positions_covered_once(self):
        seen = set()
        for lane in range(32):
            seen.update(lane_positions(lane))
        assert seen == set(range(FRAG_ELEMS))

    def test_constants(self):
        assert FRAG_TILE == 8 and TC_TILE == 16 and BLOCK_TILE == 64
        assert FRAG_ELEMS == 64 and TILES_PER_BLOCK == 64
