"""Cross-module integration tests: the full offline -> online pipeline."""

import numpy as np
import pytest

from repro import ZipServ, compress_weights
from repro.bf16 import bf16_to_f32
from repro.codecs import get_bf16_codec
from repro.kernels.functional import dense_gemm_tiled, zipgemm_execute
from repro.serving.weights import materialize_layer
from repro.tcatbe import decompress
from repro.tcatbe.io import load_npz, save_npz


class TestOfflineOnlinePipeline:
    def test_compress_save_load_execute(self, tmp_path, rng):
        """Offline compressor -> storage -> fused inference, end to end."""
        w = materialize_layer(96, 128, seed=81)
        matrix = compress_weights(w)

        path = tmp_path / "layer.npz"
        save_npz(matrix, path)
        loaded = load_npz(path)

        x = rng.normal(0, 1, (128, 4)).astype(np.float32)
        fused = zipgemm_execute(loaded, x)
        dense = dense_gemm_tiled(w, x)
        assert np.array_equal(fused, dense)

    def test_compression_ratio_consistency_across_formats(self):
        """TCA-TBE and the entropy baselines see the same redundancy."""
        w = materialize_layer(512, 512, seed=82)
        tcatbe = compress_weights(w)
        dfloat11 = get_bf16_codec("dfloat11").compress(w)
        # Entropy coding is slightly tighter than fixed-length TBE (the
        # price of constant-time decode) but both sit near 11 bits/elem.
        assert dfloat11.bits_per_element < tcatbe.bits_per_element
        assert tcatbe.bits_per_element - dfloat11.bits_per_element < 1.0

    def test_lossless_means_identical_inference(self, rng):
        """The paper's core claim: compressed inference is bit-exact."""
        w = materialize_layer(64, 64, seed=83)
        matrix = compress_weights(w)
        recovered = decompress(matrix)
        x = rng.normal(0, 1, (64, 3)).astype(np.float32)
        y_orig = bf16_to_f32(w) @ x
        y_comp = bf16_to_f32(recovered) @ x
        assert np.array_equal(y_orig, y_comp)


class TestServingScenario:
    def test_compression_buys_capacity_and_speed(self):
        """Figure 17's storyline in one scenario."""
        zs = ZipServ("llama3.1-8b", "rtx4090", backend="zipserv")
        vl = ZipServ("llama3.1-8b", "rtx4090", backend="vllm")

        # 1. Same hardware, smaller weights, bigger KV.
        assert zs.memory_plan.weight_gib < vl.memory_plan.weight_gib
        assert zs.memory_plan.kv_gib > vl.memory_plan.kv_gib

        # 2. A long-context batch that only the compressed deployment fits.
        batch, ctx = 32, 2176
        assert zs.fits(batch, ctx)
        assert not vl.fits(batch, ctx)

        # 3. Faster decode steps on top.
        z_step = zs.decode_step_breakdown(32, 1024)
        v_step = vl.decode_step_breakdown(32, 1024)
        assert z_step.linear_s < v_step.linear_s
        assert z_step.attention_s == pytest.approx(v_step.attention_s)

    def test_bigger_model_fits_compressed_only(self):
        """§6.5: deploy larger models on resource-constrained hardware."""
        from repro.errors import CapacityError
        from repro.core.api import plan_for

        with pytest.raises(CapacityError):
            plan_for("mistral-24b", "l40s", "vllm")
        plan = plan_for("mistral-24b", "l40s", "zipserv")
        assert plan.kv_gib > 1.0

    def test_throughput_story_all_models(self):
        """ZipServ wins end-to-end on every single-GPU paper config."""
        for model, gpu in (("llama3.1-8b", "rtx4090"),):
            zs = ZipServ(model, gpu, backend="zipserv")
            vl = ZipServ(model, gpu, backend="vllm")
            for out_len in (128, 512):
                z = zs.generate(8, 128, out_len)
                v = vl.generate(8, 128, out_len)
                assert z.throughput_tok_s > v.throughput_tok_s
                assert z.latency_s < v.latency_s
