"""Tests for the BF16 substrate (repro.bf16)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bf16 import (
    assemble,
    bf16_to_f32,
    exponent_field,
    f32_to_bf16,
    gaussian_bf16_matrix,
    gaussian_bf16_sample,
    mantissa_field,
    pack_sign_mantissa,
    sign_field,
    unpack_sign_mantissa,
)
from repro.bf16.dtype import QUIET_NAN
from repro.errors import ShapeError


class TestConversion:
    def test_one(self):
        assert f32_to_bf16(np.float32(1.0)) == 0x3F80

    def test_minus_two(self):
        assert f32_to_bf16(np.float32(-2.0)) == 0xC000

    def test_zero(self):
        assert f32_to_bf16(np.float32(0.0)) == 0x0000

    def test_inf(self):
        assert f32_to_bf16(np.float32(np.inf)) == 0x7F80
        assert f32_to_bf16(np.float32(-np.inf)) == 0xFF80

    def test_nan_canonical(self):
        assert f32_to_bf16(np.float32(np.nan)) == QUIET_NAN

    def test_round_to_nearest(self):
        # 1.0 + 2^-8 is exactly halfway between BF16 1.0 and its successor;
        # round-to-even keeps the even mantissa (0x3F80).
        value = np.float32(1.0) + np.float32(2.0**-8)
        assert f32_to_bf16(value) == 0x3F80
        # Slightly more than halfway rounds up.
        value = np.float32(1.0) + np.float32(2.0**-8) + np.float32(2.0**-12)
        assert f32_to_bf16(value) == 0x3F81

    def test_round_half_odd_goes_up(self):
        # 1.0078125 (mantissa ...0001) + half ulp rounds up to even.
        base = np.uint16(0x3F81)
        f = bf16_to_f32(base)
        halfway = f + np.float32(2.0**-8)
        assert f32_to_bf16(halfway) == 0x3F82

    def test_exact_values_roundtrip(self, rng):
        bits = rng.integers(0, 2**16, 4096).astype(np.uint16)
        # Skip NaN patterns (exponent 255, mantissa != 0): they canonicalise.
        exp = exponent_field(bits)
        mant = mantissa_field(bits)
        bits = bits[~((exp == 255) & (mant != 0))]
        assert np.array_equal(f32_to_bf16(bf16_to_f32(bits)), bits)

    @given(
        st.floats(
            np.float32(-1e20), np.float32(1e20), allow_nan=False, width=32
        )
    )
    def test_monotone_error_bound(self, x):
        x32 = np.float32(x)
        back = bf16_to_f32(f32_to_bf16(np.array([x32])))[0]
        if np.isfinite(back):
            # Relative error bounded by half an ulp (2^-8).
            assert abs(float(back) - float(x32)) <= max(
                abs(float(x32)) * 2.0**-8, 1e-41
            )


class TestFields:
    def test_decomposition(self):
        bits = np.uint16((1 << 15) | (130 << 7) | 5)
        assert sign_field(bits) == 1
        assert exponent_field(bits) == 130
        assert mantissa_field(bits) == 5

    def test_assemble_roundtrip(self, rng):
        bits = rng.integers(0, 2**16, 2048).astype(np.uint16)
        rebuilt = assemble(
            sign_field(bits), exponent_field(bits), mantissa_field(bits)
        )
        assert np.array_equal(rebuilt, bits)

    def test_assemble_validation(self):
        with pytest.raises(ValueError):
            assemble(np.array([2]), np.array([0]), np.array([0]))
        with pytest.raises(ValueError):
            assemble(np.array([0]), np.array([256]), np.array([0]))
        with pytest.raises(ValueError):
            assemble(np.array([0]), np.array([0]), np.array([128]))

    def test_pack_unpack_sign_mantissa(self, rng):
        bits = rng.integers(0, 2**16, 1024).astype(np.uint16)
        packed = pack_sign_mantissa(bits)
        sign, mant = unpack_sign_mantissa(packed)
        assert np.array_equal(sign, sign_field(bits))
        assert np.array_equal(mant, mantissa_field(bits))

    def test_wrong_dtype_rejected(self):
        with pytest.raises(ShapeError):
            exponent_field(np.zeros(4, dtype=np.int32))


class TestRandom:
    def test_shape(self):
        m = gaussian_bf16_matrix(10, 20, seed=0)
        assert m.shape == (10, 20) and m.dtype == np.uint16

    def test_deterministic(self):
        a = gaussian_bf16_sample(100, seed=5)
        b = gaussian_bf16_sample(100, seed=5)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = gaussian_bf16_sample(100, seed=5)
        b = gaussian_bf16_sample(100, seed=6)
        assert not np.array_equal(a, b)

    def test_sigma_scales_magnitudes(self):
        small = np.abs(bf16_to_f32(gaussian_bf16_sample(5000, 0.001, seed=1)))
        large = np.abs(bf16_to_f32(gaussian_bf16_sample(5000, 0.1, seed=1)))
        assert large.mean() > 10 * small.mean()

    def test_validation(self):
        with pytest.raises(ValueError):
            gaussian_bf16_sample(-1)
        with pytest.raises(ValueError):
            gaussian_bf16_sample(10, sigma=0.0)
        with pytest.raises(ValueError):
            gaussian_bf16_matrix(0, 4)
