"""Bit-exact round-trip tests for the TCA-TBE compressor/decompressor."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bf16 import gaussian_bf16_matrix
from repro.errors import ShapeError
from repro.tcatbe import (
    WindowSelection,
    compress,
    decompress,
    decompress_tile,
    exponent_histogram,
    select_window,
)


class TestRoundTrip:
    """Format-level checks only — the codec-agnostic round-trip matrix
    (edge shapes, all-outlier/random input, empty tensors) lives in
    ``tests/test_compression_registry.py``."""

    def test_validate_on_padded_shape(self):
        w = gaussian_bf16_matrix(100, 130, sigma=0.02, seed=100)
        matrix = compress(w)
        matrix.validate()
        assert np.array_equal(decompress(matrix), w)

    def test_random_bits_mostly_fallback(self, rng):
        # Arbitrary uint16 patterns: terrible compression, still lossless.
        w = rng.integers(0, 2**16, (70, 80)).astype(np.uint16)
        matrix = compress(w)
        assert np.array_equal(decompress(matrix), w)
        assert matrix.ratio < 1.1  # mostly fallback storage

    def test_all_zero(self):
        w = np.zeros((64, 64), dtype=np.uint16)
        matrix = compress(w)
        assert np.array_equal(decompress(matrix), w)
        # Exponent 0 is always fallback (codeword 000 is reserved).
        assert matrix.n_high == 0
        assert matrix.n_low == 64 * 64

    def test_constant_value(self):
        w = np.full((64, 64), np.uint16(120 << 7), dtype=np.uint16)
        matrix = compress(w)
        assert np.array_equal(decompress(matrix), w)
        assert matrix.coverage == 1.0

    def test_special_values_mixed(self):
        w = gaussian_bf16_matrix(64, 64, sigma=0.02, seed=9).copy()
        w[0, 0] = 0x7F80   # +inf
        w[0, 1] = 0xFF80   # -inf
        w[0, 2] = 0x7FC0   # NaN
        w[0, 3] = 0x0000   # +0
        w[0, 4] = 0x8000   # -0
        w[0, 5] = 0x0001   # subnormal
        matrix = compress(w)
        assert np.array_equal(decompress(matrix), w)

    def test_padding_not_leaked(self):
        w = gaussian_bf16_matrix(65, 67, sigma=0.02, seed=4)
        out = decompress(compress(w))
        assert out.shape == (65, 67)
        assert np.array_equal(out, w)

    def test_window_override(self):
        w = gaussian_bf16_matrix(64, 64, sigma=0.02, seed=5)
        window = WindowSelection(base_exp=100, start=101, size=7,
                                 coverage=0.0)
        matrix = compress(w, window=window)
        assert matrix.base_exp == 100
        assert np.array_equal(decompress(matrix), w)

    def test_window_size_mismatch_rejected(self):
        w = gaussian_bf16_matrix(64, 64, seed=6)
        window = WindowSelection(base_exp=100, start=101, size=3,
                                 coverage=0.0)
        with pytest.raises(ShapeError):
            compress(w, window=window)

    def test_input_validation(self):
        with pytest.raises(ShapeError):
            compress(np.zeros((4, 4), dtype=np.float32))
        with pytest.raises(ShapeError):
            compress(np.zeros(16, dtype=np.uint16))


class TestCompressionQuality:
    def test_ratio_near_paper(self):
        w = gaussian_bf16_matrix(512, 512, sigma=0.015, seed=7)
        matrix = compress(w)
        # Paper: ~11.3 bits/element, ~1.41x including container overhead.
        assert 11.0 < matrix.bits_per_element < 11.6
        assert 1.38 < matrix.ratio < 1.46

    def test_coverage_matches_window(self):
        w = gaussian_bf16_matrix(256, 256, sigma=0.02, seed=8)
        window = select_window(exponent_histogram(w))
        matrix = compress(w)
        assert matrix.coverage == pytest.approx(window.coverage, abs=0.01)

    def test_buffer_sizes_consistent(self):
        w = gaussian_bf16_matrix(128, 128, sigma=0.02, seed=10)
        matrix = compress(w)
        assert matrix.n_high + matrix.n_low == matrix.n_padded_elements
        assert matrix.high_starts[-1] == matrix.n_high
        assert matrix.low_starts[-1] == matrix.n_low


class TestTileDecode:
    def test_every_tile_matches_full_decode(self, small_weights):
        matrix = compress(small_weights)
        from repro.tcatbe.layout import pad_matrix, to_tiles

        padded = pad_matrix(
            small_weights, np.uint16((matrix.base_exp + 1) << 7)
        )
        tiles = to_tiles(padded)
        for t in range(matrix.n_tiles):
            assert np.array_equal(decompress_tile(matrix, t), tiles[t]), t

    def test_tile_index_bounds(self, small_weights):
        matrix = compress(small_weights)
        from repro.errors import FormatError

        with pytest.raises(FormatError):
            decompress_tile(matrix, matrix.n_tiles)
        with pytest.raises(FormatError):
            decompress_tile(matrix, -1)


class TestProperties:
    @given(st.integers(0, 10_000))
    def test_roundtrip_random_seeds(self, seed):
        rng = np.random.default_rng(seed)
        rows = int(rng.integers(1, 100))
        cols = int(rng.integers(1, 100))
        w = rng.integers(0, 2**16, (rows, cols)).astype(np.uint16)
        matrix = compress(w)
        matrix.validate()
        assert np.array_equal(decompress(matrix), w)

    @given(st.floats(0.001, 0.2))
    def test_gaussian_sigma_sweep(self, sigma):
        w = gaussian_bf16_matrix(64, 64, sigma=sigma, seed=0)
        matrix = compress(w)
        assert np.array_equal(decompress(matrix), w)
        assert matrix.coverage > 0.90  # scale-invariant skew (Appendix A)
