"""Tests for the analytical kernel cost models."""

import pytest

from repro.analysis.calibration import decode_cycles_per_element
from repro.errors import ConfigError, UnknownSpecError
from repro.gpu.specs import get_gpu
from repro.kernels import (
    KernelProfile,
    WeightCompression,
    baseline_decompress,
    cublas_gemm,
    decoupled_pipeline,
    fused_wins,
    marlin_w8a16_gemm,
    stage_aware_linear,
    zipgemm,
    zipserv_decompress,
)
from repro.kernels.base import default_compression, saturation_fraction
from repro.kernels.zipgemm import zip_splitk_heuristic

G4090 = get_gpu("rtx4090")
L40S = get_gpu("l40s")
GATEUP = (28672, 4096)  # LLaMA3.1-8B merged gate+up


class TestCalibration:
    def test_decode_cycles_band(self):
        cycles = decode_cycles_per_element()
        assert 0.15 < cycles < 0.40

    def test_cached(self):
        assert decode_cycles_per_element() is not None
        assert decode_cycles_per_element() == decode_cycles_per_element()

    def test_default_compression_ratios(self):
        assert 1.35 < default_compression("tcatbe").ratio < 1.48
        assert 1.40 < default_compression("dfloat11").ratio < 1.58
        assert default_compression("dense").ratio == 1.0


class TestWeightCompression:
    def test_fraction(self):
        comp = WeightCompression(scheme="x", ratio=2.0)
        assert comp.compressed_fraction == 0.5

    def test_invalid_ratio(self):
        with pytest.raises(ConfigError):
            WeightCompression(scheme="x", ratio=0.5)

    def test_saturation(self):
        assert saturation_fraction(G4090, 10_000, 0.75) == 1.0
        assert saturation_fraction(G4090, 48, 0.75) == pytest.approx(0.5)
        with pytest.raises(ConfigError):
            saturation_fraction(G4090, 0, 0.75)


class TestCublasGemm:
    def test_decode_shape_memory_bound(self):
        profile = cublas_gemm(G4090, *GATEUP, 32)
        assert profile.details["mem_time_s"] > profile.details["tc_time_s"]
        # ~235 MB of weights at ~0.86 of 1008 GB/s -> ~270 us.
        assert 0.2e-3 < profile.time_s < 0.35e-3

    def test_prefill_shape_compute_bound(self):
        profile = cublas_gemm(G4090, *GATEUP, 8192)
        assert profile.details["tc_time_s"] > profile.details["mem_time_s"]

    def test_monotone_in_n(self):
        times = [cublas_gemm(G4090, *GATEUP, n).time_s
                 for n in (32, 256, 2048, 8192)]
        assert times == sorted(times)

    def test_scales_with_weight_bytes(self):
        t1 = cublas_gemm(G4090, 4096, 4096, 32).time_s
        t2 = cublas_gemm(G4090, 16384, 4096, 32).time_s
        assert 2.5 < t2 / t1 < 4.5

    def test_achieved_bandwidth_below_peak(self):
        profile = cublas_gemm(G4090, *GATEUP, 32)
        assert profile.achieved_gbps < G4090.dram_gbps

    def test_validation(self):
        with pytest.raises(ConfigError):
            cublas_gemm(G4090, 0, 4096, 32)


class TestZipGemm:
    def test_decode_speedup_band_ada(self):
        for gpu in (G4090, L40S):
            cb = cublas_gemm(gpu, *GATEUP, 32)
            zg = zipgemm(gpu, *GATEUP, 32)
            assert 1.25 < zg.speedup_over(cb) < 1.50  # paper avg 1.31-1.36

    def test_alu_hidden_at_decode_on_ada(self):
        zg = zipgemm(G4090, *GATEUP, 32)
        assert zg.details["alu_time_s"] < zg.details["mem_time_s"]

    def test_a100_near_parity(self):
        a100 = get_gpu("a100")
        cb = cublas_gemm(a100, *GATEUP, 32)
        zg = zipgemm(a100, *GATEUP, 32)
        assert 0.85 < zg.speedup_over(cb) < 1.1  # §7: may not match cuBLAS

    def test_h800_loses(self):
        h800 = get_gpu("h800")
        cb = cublas_gemm(h800, *GATEUP, 32)
        zg = zipgemm(h800, *GATEUP, 32)
        assert zg.speedup_over(cb) < 1.0

    def test_small_layer_slowdown(self):
        # O_proj of LLaMA3.1-8B on L40S: paper reports 0.79x.
        cb = cublas_gemm(L40S, 4096, 4096, 32)
        zg = zipgemm(L40S, 4096, 4096, 32)
        assert 0.65 < zg.speedup_over(cb) < 1.0

    def test_loses_at_prefill_n(self):
        cb = cublas_gemm(G4090, *GATEUP, 8192)
        zg = zipgemm(G4090, *GATEUP, 8192)
        assert zg.time_s > cb.time_s

    def test_reads_compressed_bytes(self):
        zg = zipgemm(G4090, *GATEUP, 32)
        cb = cublas_gemm(G4090, *GATEUP, 32)
        reduction = 1 - zg.traffic.dram_read / cb.traffic.dram_read
        assert 0.25 < reduction < 0.33  # paper: 29.3% fewer DRAM reads

    def test_splitk_heuristic(self):
        assert zip_splitk_heuristic(4096, 4096) == 1
        assert zip_splitk_heuristic(4096, 14336) == 3
        assert zip_splitk_heuristic(4096, 65536) == 8

    def test_custom_compression(self):
        strong = zipgemm(G4090, *GATEUP, 32,
                         WeightCompression("tcatbe", ratio=2.0))
        weak = zipgemm(G4090, *GATEUP, 32,
                       WeightCompression("tcatbe", ratio=1.01))
        assert strong.time_s < weak.time_s


class TestDecompressKernels:
    def test_zipserv_fastest(self):
        zd = zipserv_decompress(L40S, *GATEUP)
        for codec in ("dietgpu", "nvcomp", "dfloat11"):
            bd = baseline_decompress(L40S, *GATEUP, codec)
            assert bd.time_s > zd.time_s

    def test_paper_ordering(self):
        # DietGPU slowest, DFloat11 closest to ZipServ (Figure 13).
        times = {
            codec: baseline_decompress(L40S, *GATEUP, codec).time_s
            for codec in ("dietgpu", "nvcomp", "dfloat11")
        }
        assert times["dietgpu"] > times["dfloat11"]
        assert times["nvcomp"] > times["dfloat11"]

    def test_speedup_bands(self):
        zd = zipserv_decompress(L40S, *GATEUP)
        ratios = {
            codec: baseline_decompress(L40S, *GATEUP, codec).time_s / zd.time_s
            for codec in ("dietgpu", "nvcomp", "dfloat11")
        }
        assert 1.7 < ratios["dietgpu"] < 2.5   # paper 2.14
        assert 1.5 < ratios["nvcomp"] < 2.3    # paper 1.83
        assert 1.02 < ratios["dfloat11"] < 1.3  # paper 1.10

    def test_nvcomp_two_passes(self):
        bd = baseline_decompress(L40S, *GATEUP, "nvcomp")
        assert "pass1_s" in bd.details and "pass2_s" in bd.details

    def test_unknown_codec(self):
        with pytest.raises(UnknownSpecError):
            baseline_decompress(L40S, 64, 64, "zstd")

    def test_validation(self):
        with pytest.raises(ConfigError):
            zipserv_decompress(L40S, 0, 64)


class TestPipelines:
    def test_decoupled_is_sum(self):
        pipe = decoupled_pipeline(L40S, *GATEUP, 32, "dfloat11")
        assert pipe.time_s == pytest.approx(
            pipe.details["decomp_time_s"] + pipe.details["gemm_time_s"]
        )

    def test_decoupled_slower_than_cublas(self):
        cb = cublas_gemm(L40S, *GATEUP, 32)
        for codec in ("dietgpu", "nvcomp", "dfloat11"):
            pipe = decoupled_pipeline(L40S, *GATEUP, 32, codec)
            ratio = cb.time_s / pipe.time_s
            assert ratio < 0.5  # paper: 0.17-0.34

    def test_stage_aware_decode_is_fused(self):
        profile = stage_aware_linear(G4090, *GATEUP, 32)
        assert profile.details["path"] == "fused"

    def test_stage_aware_prefill_is_decoupled(self):
        profile = stage_aware_linear(G4090, *GATEUP, 8192)
        assert profile.details["path"] == "decoupled"

    def test_prefill_overhead_small(self):
        cb = cublas_gemm(G4090, *GATEUP, 8192)
        sa = stage_aware_linear(G4090, *GATEUP, 8192)
        overhead = sa.time_s / cb.time_s - 1.0
        assert overhead < 0.06  # paper: ~4% at N=8192
        cb16 = cublas_gemm(G4090, *GATEUP, 16384)
        sa16 = stage_aware_linear(G4090, *GATEUP, 16384)
        assert sa16.time_s / cb16.time_s - 1.0 < 0.04  # paper: ~2%

    def test_fused_wins_predicate(self):
        assert fused_wins(G4090, *GATEUP, 32)
        assert not fused_wins(G4090, *GATEUP, 8192)

    def test_forced_modes(self):
        fused = stage_aware_linear(G4090, *GATEUP, 8192, mode="fused")
        assert fused.details["path"] == "fused"
        dec = stage_aware_linear(G4090, *GATEUP, 32, mode="decoupled")
        assert dec.details["path"] == "decoupled"
        with pytest.raises(ConfigError):
            stage_aware_linear(G4090, *GATEUP, 32, mode="magic")


class TestMarlin:
    def test_faster_than_zipgemm(self):
        ml = marlin_w8a16_gemm(G4090, *GATEUP, 32)
        zg = zipgemm(G4090, *GATEUP, 32)
        assert ml.time_s < zg.time_s

    def test_gap_tracks_bitwidth(self):
        # §7: the 1.36x gap matches the ~11.3-vs-8-bit width ratio.
        ml = marlin_w8a16_gemm(G4090, *GATEUP, 32)
        zg = zipgemm(G4090, *GATEUP, 32)
        gap = zg.time_s / ml.time_s
        assert 1.25 < gap < 1.55

    def test_validation(self):
        with pytest.raises(ConfigError):
            marlin_w8a16_gemm(G4090, -1, 4096, 32)


class TestKernelProfile:
    def test_combine(self):
        a = cublas_gemm(G4090, 4096, 4096, 32)
        b = cublas_gemm(G4090, 4096, 4096, 32)
        combined = KernelProfile.combine("pair", [a, b])
        assert combined.time_s == pytest.approx(2 * a.time_s)
        assert combined.flops == pytest.approx(2 * a.flops)

    def test_speedup_over(self):
        a = cublas_gemm(G4090, 4096, 4096, 32)
        assert a.speedup_over(a) == pytest.approx(1.0)

    def test_negative_time_rejected(self):
        from repro.gpu.memory import TrafficRecord

        with pytest.raises(ConfigError):
            KernelProfile("x", -1.0, TrafficRecord())
