"""Tests for the Appendix-A theory module."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.theory import (
    U_STAR,
    exponent_pmf_gaussian,
    gaussian_exponent_entropy,
    mode_exponent,
    pmf_is_unimodal,
    top_k_is_contiguous,
    window_coverage_gaussian,
)
from repro.bf16 import gaussian_bf16_sample
from repro.tcatbe.analysis import exponent_histogram, select_window


class TestPmf:
    def test_normalised(self):
        for sigma in (0.005, 0.02, 0.1):
            assert exponent_pmf_gaussian(sigma).sum() == pytest.approx(1.0)

    def test_sigma_validation(self):
        with pytest.raises(ValueError):
            exponent_pmf_gaussian(0.0)

    def test_mode_tracks_u_star(self):
        # Theorem A.1: peak near 2^x = u0 * sigma * sqrt(2).
        sigma = 0.02
        peak_magnitude = U_STAR * sigma * math.sqrt(2.0)
        expected_exp = 127 + math.floor(math.log2(peak_magnitude))
        assert abs(mode_exponent(sigma) - expected_exp) <= 1

    def test_matches_sampled_histogram(self):
        sigma = 0.02
        pmf = exponent_pmf_gaussian(sigma)
        sample = gaussian_bf16_sample(500_000, sigma, seed=5)
        hist = exponent_histogram(sample) / 500_000
        # Compare the bulk of the distribution bin by bin.
        top = np.argsort(-pmf)[:5]
        assert np.allclose(pmf[top], hist[top], atol=0.01)

    @given(st.floats(0.001, 0.2))
    def test_unimodal_for_all_sigma(self, sigma):
        assert pmf_is_unimodal(exponent_pmf_gaussian(sigma))

    @given(st.floats(0.001, 0.2))
    def test_top7_contiguous_for_all_sigma(self, sigma):
        assert top_k_is_contiguous(exponent_pmf_gaussian(sigma), 7)

    def test_unimodality_detector_catches_bimodal(self):
        bimodal = np.zeros(256)
        bimodal[100] = 0.4
        bimodal[101] = 0.1
        bimodal[102] = 0.4
        bimodal[99] = 0.1
        assert not pmf_is_unimodal(bimodal)

    def test_contiguity_detector_negative(self):
        pmf = np.zeros(256)
        pmf[100] = 0.5
        pmf[110] = 0.5
        assert not top_k_is_contiguous(pmf, 2)


class TestCoverageAndEntropy:
    def test_coverage_band(self):
        # §3.1: ~97.1% average 7-window coverage.
        for sigma in (0.01, 0.02, 0.04):
            assert 0.955 < window_coverage_gaussian(sigma) < 0.99

    def test_coverage_scale_invariant(self):
        # The pmf shape shifts but does not change with sigma.
        covers = [window_coverage_gaussian(s) for s in (0.005, 0.02, 0.08)]
        assert max(covers) - min(covers) < 0.02

    def test_entropy_band(self):
        # Paper: 2.57-2.74 bits on real models; Gaussian sits near 2.55.
        for sigma in (0.01, 0.02, 0.04):
            assert 2.4 < gaussian_exponent_entropy(sigma) < 2.8

    def test_analytic_vs_sampled_coverage(self):
        sigma = 0.015
        sampled = select_window(
            exponent_histogram(gaussian_bf16_sample(300_000, sigma, seed=9))
        ).coverage
        assert window_coverage_gaussian(sigma) == pytest.approx(
            sampled, abs=0.005
        )
