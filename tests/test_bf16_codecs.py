"""Tests for the split-plane BF16 lossless codecs (the baselines)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bf16 import gaussian_bf16_matrix
from repro.codecs import BF16_CODECS, get_bf16_codec
from repro.codecs.base import get_byte_codec
from repro.codecs.stats import byte_entropy, code_length_stats, top_k_coverage
from repro.errors import CodecError, UnknownSpecError

ALL = ("dfloat11", "dietgpu", "nvcomp")


class TestRegistry:
    def test_three_baselines(self):
        assert set(BF16_CODECS) == set(ALL)

    def test_unknown(self):
        with pytest.raises(UnknownSpecError):
            get_bf16_codec("zstd")

    def test_byte_codec_registry(self):
        assert get_byte_codec("huffman").name == "huffman"
        assert get_byte_codec("rans").name == "rans"
        with pytest.raises(CodecError):
            get_byte_codec("lzma")

    def test_nvcomp_has_reassembly_pass(self):
        assert get_bf16_codec("nvcomp").reassembly_passes == 1
        assert get_bf16_codec("dfloat11").reassembly_passes == 0


@pytest.mark.parametrize("name", ALL)
class TestAccountingBands:
    """Container accounting and ratio bands — the round-trip contract
    itself (edge shapes, special values, random bits) is covered for
    every registered codec in ``tests/test_compression_registry.py``."""

    def test_ratio_on_llm_like_weights(self, name):
        w = gaussian_bf16_matrix(256, 512, sigma=0.015, seed=2)
        blob = get_bf16_codec(name).compress(w)
        # The paper's theoretical bound is ~1.51x for BF16 exponent coding.
        assert 1.40 < blob.ratio < 1.60
        assert 10.0 < blob.bits_per_element < 11.5

    def test_blob_accounting(self, name):
        w = gaussian_bf16_matrix(64, 64, sigma=0.02, seed=3)
        blob = get_bf16_codec(name).compress(w)
        assert blob.original_nbytes == 2 * 64 * 64
        assert blob.compressed_nbytes < blob.original_nbytes
        assert blob.n_elements == 64 * 64


class TestErrors:
    def test_wrong_dtype(self):
        with pytest.raises(CodecError):
            get_bf16_codec("dfloat11").compress(np.zeros((4, 4), np.float32))

    def test_codec_mismatch(self):
        w = gaussian_bf16_matrix(32, 32, seed=4)
        blob = get_bf16_codec("dfloat11").compress(w)
        with pytest.raises(CodecError):
            get_bf16_codec("dietgpu").decompress(blob)


class TestStats:
    def test_entropy_bounds(self, rng):
        uniform = rng.integers(0, 256, 50_000).astype(np.uint8)
        assert 7.9 < byte_entropy(uniform) <= 8.0
        constant = np.zeros(1000, dtype=np.uint8)
        assert byte_entropy(constant) == 0.0
        assert byte_entropy(np.zeros(0, dtype=np.uint8)) == 0.0

    def test_top_k_coverage(self):
        freqs = np.zeros(256, dtype=np.int64)
        freqs[1], freqs[2], freqs[3] = 50, 30, 20
        assert top_k_coverage(freqs, 1) == pytest.approx(0.5)
        assert top_k_coverage(freqs, 3) == pytest.approx(1.0)
        assert top_k_coverage(np.zeros(256, dtype=np.int64), 3) == 0.0

    def test_code_length_stats(self):
        stats = code_length_stats(np.array([2, 4, 4, 6]))
        assert stats["mean"] == pytest.approx(4.0)
        assert stats["max"] == 6.0
        assert code_length_stats(np.array([]))["mean"] == 0.0

    @given(st.integers(16, 400))
    def test_entropy_coded_size_tracks_entropy(self, n):
        data = (np.arange(n) % 3).astype(np.uint8) + 120
        stream = get_byte_codec("huffman").encode(data)
        entropy_bits = byte_entropy(data) * n
        assert stream.payload.nbytes * 8 >= entropy_bits * 0.9
