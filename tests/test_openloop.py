"""Tests for the open-loop driver and knee search (`repro.serving.openloop`).

The properties that make an open-loop capacity number trustworthy:

* **arrival independence** — the offered stream is a pure function of
  ``(rate, duration, seed)``; a slow server sees exactly the stamps a
  fast one does;
* **conservation** — at every deadline,
  ``finished + unfinished + rejected == offered``;
* **warmup exclusion is pure summarisation** — trimming the window never
  changes what happened, only which cohort is reported;
* **overload terminates** — driving far past saturation ends at the
  deadline with finite, sensible metrics;
* **bisection converges and always terminates**, even under
  non-monotone probe noise.
"""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import CapacityError, ConfigError
from repro.gpu.specs import get_gpu
from repro.serving import (
    DisaggConfig,
    InferenceEngine,
    SchedulerLimits,
    ServingConfig,
    find_knee,
    get_backend,
    get_model,
    goodput_feasible,
    open_loop_arrivals,
    run_open_loop,
)
from repro.serving.metrics import ContinuousResult

LIMITS = SchedulerLimits(max_num_seqs=16, max_batched_tokens=8192)


# ----------------------------------------------------------------------
# A synthetic closed-form server: single FIFO queue, fixed service time.
# Capacity is exactly 1/service_s requests per second, so knee placement
# is checkable without the engine's cost model in the loop.
# ----------------------------------------------------------------------
def make_fifo_server(service_s: float, recorded_arrivals=None):
    def serve(requests, deadline_s):
        reqs = sorted(requests, key=lambda r: (r.arrival_s, r.request_id))
        if recorded_arrivals is not None:
            recorded_arrivals.append([r.arrival_s for r in reqs])
        clock = 0.0
        finished, unfinished = [], []
        for i, req in enumerate(reqs):
            start = max(clock, req.arrival_s)
            end = start + service_s
            if deadline_s is not None and end > deadline_s:
                # FIFO: nothing behind this request can finish either.
                unfinished.extend(reqs[i:])
                break
            req.first_token_s = start + 0.5 * service_s
            req.finish_s = end
            req.generated = req.max_new_tokens
            clock = end
            finished.append(req)
        return ContinuousResult.from_run(
            finished, makespan_s=clock, n_steps=len(finished),
            peak_running=1, unfinished=unfinished, deadline_s=deadline_s,
        )
    return serve


@pytest.fixture(scope="module")
def engine():
    return InferenceEngine(
        get_model("llama3.1-8b"), get_gpu("rtx4090"), get_backend("zipserv")
    )


@pytest.fixture(scope="module")
def colocated_serve(engine):
    config = ServingConfig(
        prefill_mode="chunked", cost_bucket=64, limits=LIMITS
    )
    return lambda reqs, deadline: engine.serve(
        reqs, config=config, deadline_s=deadline
    )


class TestOpenLoopArrivals:
    def test_pure_function_of_seed(self):
        a = open_loop_arrivals(10.0, 20.0, seed=7)
        b = open_loop_arrivals(10.0, 20.0, seed=7)
        assert np.array_equal(a, b)

    def test_seed_changes_stream(self):
        a = open_loop_arrivals(10.0, 20.0, seed=7)
        b = open_loop_arrivals(10.0, 20.0, seed=8)
        assert not np.array_equal(a, b)

    def test_all_inside_horizon(self):
        arrivals = open_loop_arrivals(50.0, 10.0, seed=0)
        assert arrivals.size > 0
        assert arrivals.min() > 0.0
        assert arrivals.max() < 10.0
        assert np.all(np.diff(arrivals) >= 0)

    def test_count_is_poisson_random(self):
        # Mean count over seeds approximates rate * duration; the count
        # itself varies seed to seed (unlike poisson_trace's fixed n).
        counts = [
            open_loop_arrivals(20.0, 10.0, seed=s).size for s in range(30)
        ]
        assert len(set(counts)) > 1
        assert np.mean(counts) == pytest.approx(200, rel=0.15)

    def test_long_horizon_chunks(self):
        # Forces the tail loop past the first chunk draw.
        arrivals = open_loop_arrivals(0.5, 400.0, seed=3)
        assert arrivals.max() < 400.0
        assert arrivals.size == pytest.approx(200, rel=0.5)

    def test_can_be_empty(self):
        assert open_loop_arrivals(0.001, 0.5, seed=0).size == 0

    def test_validation(self):
        with pytest.raises(ConfigError):
            open_loop_arrivals(0.0, 10.0)
        with pytest.raises(ConfigError):
            open_loop_arrivals(10.0, 0.0)


class TestArrivalIndependence:
    """The defining open-loop property: completions cannot shape load."""

    def test_fast_vs_slow_server_same_stamps(self):
        seen_fast, seen_slow = [], []
        fast = make_fifo_server(0.001, recorded_arrivals=seen_fast)
        slow = make_fifo_server(0.5, recorded_arrivals=seen_slow)
        for server, seen in ((fast, seen_fast), (slow, seen_slow)):
            run_open_loop(server, "chat", 8.0, 10.0,
                          warmup_s=1.0, cooldown_s=1.0, seed=11)
        assert seen_fast == seen_slow
        assert len(seen_fast[0]) > 0

    def test_engine_sees_same_stamps_as_stub(self, colocated_serve):
        seen_engine, seen_stub = [], []

        def recording_engine(reqs, deadline):
            seen_engine.append([r.arrival_s for r in reqs])
            return colocated_serve(reqs, deadline)

        stub = make_fifo_server(0.25, recorded_arrivals=seen_stub)
        run_open_loop(recording_engine, "chat", 6.0, 8.0, seed=5)
        run_open_loop(stub, "chat", 6.0, 8.0, seed=5)
        assert seen_engine == seen_stub

    def test_offered_count_independent_of_deadline(self):
        tight = run_open_loop(make_fifo_server(1.0), "fixed_length",
                              4.0, 10.0, deadline_s=10.0, seed=2)
        loose = run_open_loop(make_fifo_server(1.0), "fixed_length",
                              4.0, 10.0, deadline_s=100.0, seed=2)
        assert tight.n_offered == loose.n_offered


class TestConservation:
    """finished + unfinished + rejected == offered, at every deadline."""

    @given(seed=st.integers(0, 2**16))
    def test_fifo_overload(self, seed):
        m = run_open_loop(
            make_fifo_server(0.2), "fixed_length", 20.0, 10.0,
            deadline_s=10.0, seed=seed,
        )
        r = m.result
        assert r.n_requests + r.n_unfinished + r.n_rejected == m.n_offered

    @given(rate=st.floats(0.5, 50.0), service=st.floats(0.01, 1.0))
    def test_fifo_any_load(self, rate, service):
        m = run_open_loop(
            make_fifo_server(service), "fixed_length", rate, 5.0,
            deadline_s=5.0, seed=0,
        )
        r = m.result
        assert r.n_requests + r.n_unfinished + r.n_rejected == m.n_offered
        assert r.unfinished_rate <= 1.0

    @pytest.mark.parametrize("rate", [2.0, 10.0, 40.0])
    def test_colocated_engine(self, colocated_serve, rate):
        m = run_open_loop(
            colocated_serve, "chat", rate, 10.0,
            warmup_s=2.0, cooldown_s=2.0, deadline_s=12.0, seed=0,
        )
        r = m.result
        assert r.n_requests + r.n_unfinished + r.n_rejected == m.n_offered

    def test_disagg_engine_overload(self, engine):
        config = ServingConfig(
            mode="disaggregated", cost_bucket=64, limits=LIMITS,
            disagg=DisaggConfig(
                link_gb_per_s=0.125, transfer_codec="none",
                prefill_mode="chunked",
            ),
        )
        serve = lambda reqs, dl: engine.serve(
            reqs, config=config, deadline_s=dl
        )
        m = run_open_loop(serve, "chat", 30.0, 10.0,
                          deadline_s=12.0, seed=0)
        r = m.result
        assert r.n_unfinished > 0  # the starved link cannot keep up
        assert r.n_requests + r.n_unfinished + r.n_rejected == m.n_offered


class TestWarmupExclusion:
    """Trimming windows is pure summarisation, never re-simulation."""

    def test_steady_equals_direct_window(self):
        trimmed = run_open_loop(
            make_fifo_server(0.1), "chat", 5.0, 15.0,
            warmup_s=2.5, cooldown_s=2.5, deadline_s=45.0, seed=0,
        )
        untrimmed = run_open_loop(
            make_fifo_server(0.1), "chat", 5.0, 15.0,
            warmup_s=0.0, cooldown_s=0.0, deadline_s=45.0, seed=0,
        )
        assert trimmed.steady == untrimmed.result.window_metrics(2.5, 12.5)

    def test_steady_percentiles_insensitive_to_trim_choice(
        self, colocated_serve
    ):
        # Two different trims whose windows overlap on [3, 9): the
        # shared sub-window summarises identically from either run.
        a = run_open_loop(colocated_serve, "chat", 6.0, 12.0,
                          warmup_s=2.0, cooldown_s=2.0, seed=3)
        b = run_open_loop(colocated_serve, "chat", 6.0, 12.0,
                          warmup_s=3.0, cooldown_s=3.0, seed=3)
        assert a.result.window_metrics(3.0, 9.0) \
            == b.result.window_metrics(3.0, 9.0)
        assert b.steady == a.result.window_metrics(3.0, 9.0)

    def test_warmup_changes_reported_cohort_only(self):
        m = run_open_loop(
            make_fifo_server(0.1), "chat", 5.0, 15.0,
            warmup_s=5.0, cooldown_s=5.0, deadline_s=45.0, seed=0,
        )
        assert m.n_steady_offered <= m.n_offered
        assert m.steady.n_timings == m.n_steady_offered


class TestDeadline:
    def test_large_deadline_matches_unbounded_run(self, engine):
        from repro.serving import get_profile

        config = ServingConfig(
            prefill_mode="chunked", cost_bucket=64, limits=LIMITS
        )
        arrivals = open_loop_arrivals(4.0, 8.0, seed=9)
        unbounded = engine.serve(
            get_profile("chat").trace(arrivals, seed=9), config=config
        )
        bounded = engine.serve(
            get_profile("chat").trace(arrivals, seed=9), config=config,
            deadline_s=1e9,
        )
        assert bounded.makespan_s == unbounded.makespan_s
        assert bounded.n_requests == unbounded.n_requests
        assert bounded.n_unfinished == 0
        assert bounded.timings == unbounded.timings

    def test_overload_terminates_without_capacity_error(
        self, colocated_serve
    ):
        # Without the deadline this offered load never drains in-window;
        # with it, the run must end cleanly with the backlog counted.
        m = run_open_loop(colocated_serve, "code_generation", 50.0, 8.0,
                          deadline_s=9.0, seed=0)
        assert m.result.n_unfinished > 0
        assert m.result.deadline_s == 9.0

    def test_unbounded_stranded_requests_still_raise(self, engine):
        # The deadline path must not weaken the historical invariant:
        # run-to-completion with an unservable request still raises.
        from repro.serving.scheduler import Request

        huge = [Request(0, prompt_len=10_000_000, max_new_tokens=4)]
        with pytest.raises(CapacityError):
            engine.serve(huge, config=ServingConfig(limits=LIMITS))

    def test_run_open_loop_validation(self):
        server = make_fifo_server(0.1)
        with pytest.raises(ConfigError):
            run_open_loop(server, "chat", 5.0, 10.0, deadline_s=5.0)
        with pytest.raises(ConfigError):
            run_open_loop(server, "chat", 5.0, 10.0,
                          warmup_s=6.0, cooldown_s=5.0)
        with pytest.raises(ConfigError):
            run_open_loop(server, "chat", 5.0, 0.0)

    def test_default_deadline_is_three_durations(self):
        m = run_open_loop(make_fifo_server(0.01), "chat", 5.0, 10.0,
                          seed=0)
        assert m.deadline_s == 30.0

    def test_zero_offered_run_is_well_formed(self):
        m = run_open_loop(make_fifo_server(0.1), "chat", 0.001, 1.0,
                          seed=0)
        assert m.n_offered == 0
        assert m.result.n_requests == 0
        assert goodput_feasible(m)  # vacuously

    def test_serve_losing_requests_is_detected(self):
        def lossy(requests, deadline_s):
            return ContinuousResult.from_run(
                [], makespan_s=1.0, n_steps=0, peak_running=0,
            )
        with pytest.raises(ConfigError):
            run_open_loop(lossy, "chat", 5.0, 10.0, seed=0)


class TestPastSaturation:
    """Driving far past the knee must report finite, sensible metrics."""

    def test_colocated_engine_past_saturation(self, colocated_serve):
        m = run_open_loop(
            colocated_serve, "chat", 64.0, 10.0,
            warmup_s=2.0, cooldown_s=2.0, deadline_s=12.0, seed=0,
        )
        r = m.result
        assert r.n_unfinished > 0
        assert 0.0 < r.unfinished_rate <= 1.0
        assert math.isfinite(m.steady.ttft.p95_s)
        assert math.isfinite(m.steady.goodput_rps)
        assert math.isfinite(r.throughput_tok_s)
        assert 0.0 <= m.steady.slo_violation_rate <= 1.0
        # Deep overload: the offered-based rate counts never-started
        # requests as violations (the timing-based one cannot see them).
        assert m.steady_slo_violation_rate > 0.5
        assert not goodput_feasible(m)

    def test_fifo_all_unfinished_window(self):
        # Zero finished in the whole run: the NaN-safety acceptance case.
        m = run_open_loop(
            make_fifo_server(100.0), "fixed_length", 5.0, 10.0,
            warmup_s=1.0, cooldown_s=1.0, deadline_s=10.0, seed=0,
        )
        r = m.result
        assert r.n_requests == 0
        assert r.n_unfinished == m.n_offered
        assert m.steady.goodput_rps == 0.0
        assert math.isfinite(m.steady.ttft.p95_s)
        assert m.steady.latency.n == 0
        assert m.steady_slo_violation_rate == 1.0

    def test_offered_based_violation_rate_bounds(self):
        overloaded = run_open_loop(
            make_fifo_server(100.0), "fixed_length", 5.0, 10.0,
            warmup_s=1.0, cooldown_s=1.0, deadline_s=10.0, seed=0,
        )
        assert overloaded.steady_slo_violation_rate == 1.0
        easy = run_open_loop(
            make_fifo_server(0.01), "fixed_length", 2.0, 10.0,
            warmup_s=1.0, cooldown_s=1.0, seed=0,
        )
        assert easy.steady_slo_violation_rate == pytest.approx(0.0)


class TestMonotonicity:
    """Past the knee, more offered load never buys more goodput."""

    def test_fifo_goodput_collapses_past_knee(self):
        # Capacity 10 rps; measure at 1x, 1.6x, 3x, 6x capacity.
        goodputs = []
        for rate in (10.0, 16.0, 30.0, 60.0):
            m = run_open_loop(
                make_fifo_server(0.1), "fixed_length", rate, 30.0,
                warmup_s=5.0, cooldown_s=5.0, deadline_s=30.0, seed=1,
            )
            goodputs.append(m.steady.goodput_rps)
        for earlier, later in zip(goodputs, goodputs[1:]):
            assert later <= earlier + 0.5  # small sampling tolerance

    def test_engine_goodput_non_increasing_past_knee(self, colocated_serve):
        goodputs = []
        for rate in (16.0, 32.0, 64.0):
            m = run_open_loop(
                colocated_serve, "chat", rate, 12.0,
                warmup_s=2.0, cooldown_s=2.0, deadline_s=14.0, seed=0,
            )
            goodputs.append(m.steady.goodput_rps)
        for earlier, later in zip(goodputs, goodputs[1:]):
            assert later <= earlier + 0.5


class TestBisection:
    def test_closed_form_knee_within_tolerance(self):
        probe = lambda rate: rate <= 10.0
        k = find_knee(probe, 1.0, 33.0, rate_tol_rps=0.5, max_probes=12)
        assert k.converged
        assert 10.0 - 0.5 <= k.knee_rps <= 10.0
        assert k.infeasible_rps - k.knee_rps <= 0.5

    def test_probe_budget(self):
        # Bracket 32 wide, tolerance 0.5: 2 endpoints + 6 halvings.
        probes = []
        probe = lambda rate: (probes.append(rate), rate <= 10.0)[1]
        k = find_knee(probe, 1.0, 33.0, rate_tol_rps=0.5, max_probes=12)
        assert k.n_probes == len(probes) == 8

    def test_history_records_every_probe(self):
        k = find_knee(lambda r: r <= 4.0, 1.0, 9.0, rate_tol_rps=1.0)
        assert len(k.history) == k.n_probes
        assert all(ok == (rate <= 4.0) for rate, ok in k.history)

    def test_lo_infeasible_returns_zero(self):
        k = find_knee(lambda r: False, 1.0, 10.0)
        assert k.knee_rps == 0.0
        assert k.infeasible_rps == 1.0
        assert k.n_probes == 1
        assert not k.converged

    def test_hi_feasible_returns_hi(self):
        k = find_knee(lambda r: True, 1.0, 10.0)
        assert k.knee_rps == 10.0
        assert math.isinf(k.infeasible_rps)
        assert k.n_probes == 2
        assert not k.converged

    def test_nonmonotone_noise_still_terminates(self):
        # A deterministic noisy probe that flips answers near the knee:
        # the bracket invariant degrades to "observed", but the loop is
        # probe-bounded so it must terminate with a finite bracket.
        def noisy(rate):
            base = rate <= 10.0
            if 8.0 < rate < 12.0 and int(rate * 997) % 3 == 0:
                return not base
            return base
        k = find_knee(noisy, 1.0, 33.0, rate_tol_rps=0.25, max_probes=10)
        assert k.n_probes <= 10
        assert k.knee_rps < k.infeasible_rps

    def test_adversarial_alternating_probe_terminates(self):
        calls = []
        def adversarial(rate):
            calls.append(rate)
            return len(calls) % 2 == 1
        k = find_knee(adversarial, 1.0, 100.0, rate_tol_rps=0.01,
                      max_probes=7)
        assert k.n_probes <= 7

    def test_fifo_server_knee_near_capacity(self):
        # End to end: capacity is exactly 10 rps; queueing pushes the
        # SLO knee a bit below that. It must land in (5, 10.5].
        def probe(rate):
            m = run_open_loop(
                make_fifo_server(0.1), "fixed_length", rate, 60.0,
                warmup_s=10.0, cooldown_s=10.0, deadline_s=60.0, seed=4,
            )
            return goodput_feasible(m)
        k = find_knee(probe, 1.0, 33.0, rate_tol_rps=0.5, max_probes=12)
        assert k.converged
        assert 5.0 < k.knee_rps <= 10.5

    def test_validation(self):
        with pytest.raises(ConfigError):
            find_knee(lambda r: True, 5.0, 5.0)
        with pytest.raises(ConfigError):
            find_knee(lambda r: True, 1.0, 10.0, rate_tol_rps=0.0)
        with pytest.raises(ConfigError):
            find_knee(lambda r: True, 1.0, 10.0, max_probes=1)
