"""Tests for mma fragment layouts and the tensor-core emulation."""

import numpy as np
import pytest

from repro.bf16 import bf16_to_f32, gaussian_bf16_matrix
from repro.errors import ShapeError
from repro.gpu.tensor_core import (
    a_fragment_lane_map,
    b_fragment_lane_map,
    gather_a_fragment,
    mma_m16n8k16,
    scatter_a_fragment,
)
from repro.tcatbe.layout import lane_positions


class TestFragmentMaps:
    def test_a_map_is_bijective(self):
        fmap = a_fragment_lane_map()
        coords = {tuple(fmap[l, r, h]) for l in range(32)
                  for r in range(4) for h in range(2)}
        assert len(coords) == 256
        assert coords == {(r, c) for r in range(16) for c in range(16)}

    def test_b_map_is_bijective(self):
        fmap = b_fragment_lane_map()
        coords = {tuple(fmap[l, r, h]) for l in range(32)
                  for r in range(2) for h in range(2)}
        assert len(coords) == 128
        assert coords == {(r, c) for r in range(16) for c in range(8)}

    def test_a_map_matches_tcatbe_ownership(self):
        # Register Ra0 (quadrant (0,0)) must follow the FragTile rule:
        # lane i owns row-major positions 2i and 2i+1 of the 8x8 tile.
        fmap = a_fragment_lane_map()
        for lane in range(32):
            p0, p1 = lane_positions(lane)
            assert tuple(fmap[lane, 0, 0]) == (p0 // 8, p0 % 8)
            assert tuple(fmap[lane, 0, 1]) == (p1 // 8, p1 % 8)

    def test_quadrant_order_is_column_major(self):
        # Ra0=(0,0), Ra1=(1,0), Ra2=(0,1), Ra3=(1,1) in 8x8 blocks.
        fmap = a_fragment_lane_map()
        blocks = [tuple(fmap[0, r, 0] // 8) for r in range(4)]
        assert blocks == [(0, 0), (1, 0), (0, 1), (1, 1)]

    def test_gather_scatter_roundtrip(self):
        tile = gaussian_bf16_matrix(16, 16, seed=51)
        regs = gather_a_fragment(tile)
        assert regs.shape == (32, 4, 2)
        assert np.array_equal(scatter_a_fragment(regs), tile)

    def test_gather_validation(self):
        with pytest.raises(ShapeError):
            gather_a_fragment(np.zeros((8, 8), dtype=np.uint16))
        with pytest.raises(ShapeError):
            scatter_a_fragment(np.zeros((32, 4, 2), dtype=np.float32))


class TestMma:
    def test_matches_numpy(self):
        a = gaussian_bf16_matrix(16, 16, seed=52)
        b = gaussian_bf16_matrix(16, 8, seed=53)
        c = np.random.default_rng(0).normal(size=(16, 8)).astype(np.float32)
        d = mma_m16n8k16(a, b, c)
        expected = bf16_to_f32(a) @ bf16_to_f32(b) + c
        assert np.allclose(d, expected, rtol=1e-6)
        assert d.dtype == np.float32

    def test_zero_accumulator(self):
        a = gaussian_bf16_matrix(16, 16, seed=54)
        b = gaussian_bf16_matrix(16, 8, seed=55)
        d = mma_m16n8k16(a, b, np.zeros((16, 8), np.float32))
        assert np.allclose(d, bf16_to_f32(a) @ bf16_to_f32(b), rtol=1e-6)

    def test_shape_validation(self):
        a = gaussian_bf16_matrix(16, 16, seed=56)
        b = gaussian_bf16_matrix(16, 8, seed=57)
        with pytest.raises(ShapeError):
            mma_m16n8k16(a[:8], b, np.zeros((16, 8), np.float32))
        with pytest.raises(ShapeError):
            mma_m16n8k16(a, b[:, :4], np.zeros((16, 8), np.float32))
        with pytest.raises(ShapeError):
            mma_m16n8k16(a, b, np.zeros((16, 8), np.float64))

    def test_accumulation_chains(self):
        # Chaining two mma over K slices equals one 32-deep product.
        a = gaussian_bf16_matrix(16, 32, seed=58)
        b = gaussian_bf16_matrix(32, 8, seed=59)
        c = np.zeros((16, 8), np.float32)
        c = mma_m16n8k16(a[:, :16], b[:16], c)
        c = mma_m16n8k16(a[:, 16:], b[16:], c)
        expected = (
            bf16_to_f32(a[:, :16]) @ bf16_to_f32(b[:16])
            + bf16_to_f32(a[:, 16:]) @ bf16_to_f32(b[16:])
        )
        assert np.allclose(c, expected, rtol=1e-6)
