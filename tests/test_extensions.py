"""Tests for the §7 extensions: KV compression, checkpoints, quant combo."""

import numpy as np
import pytest

from repro.bf16 import bf16_to_f32, gaussian_bf16_matrix
from repro.errors import ConfigError, FormatError
from repro.extensions import (
    CompressedKVCacheSpec,
    compress_kv_block,
    compress_quantized,
    decompress_kv_block,
    decompress_quantized,
    delta_snapshot,
    dequantize_int8,
    kv_compression_ratio,
    load_checkpoint,
    paged_attention_decode_compressed,
    quantize_int8,
    restore_snapshot,
    save_checkpoint,
    zipquant_gemm,
)
from repro.gpu.specs import get_gpu
from repro.kernels.attention import paged_attention_decode
from repro.kernels.marlin import marlin_w8a16_gemm
from repro.serving.kvcache import KVCacheSpec

G = get_gpu("rtx4090")


class TestKvCompression:
    def test_block_roundtrip(self):
        block = gaussian_bf16_matrix(16, 2048, sigma=0.05, seed=1)
        blob = compress_kv_block(block)
        assert np.array_equal(decompress_kv_block(blob, (16, 2048)), block)

    def test_shape_mismatch_rejected(self):
        block = gaussian_bf16_matrix(16, 64, sigma=0.05, seed=2)
        blob = compress_kv_block(block)
        with pytest.raises(FormatError):
            decompress_kv_block(blob, (16, 128))

    def test_analytic_ratio_tracks_functional(self):
        block = gaussian_bf16_matrix(64, 1024, sigma=0.05, seed=3)
        blob = compress_kv_block(block)
        assert kv_compression_ratio(0.05) == pytest.approx(
            blob.ratio, rel=0.05
        )

    def test_compressed_spec_capacity(self):
        inner = KVCacheSpec(n_layers=32, kv_heads=8, head_dim=128)
        spec = CompressedKVCacheSpec(inner, ratio=1.4)
        assert spec.bytes_per_token < inner.bytes_per_token
        assert 1.3 < spec.capacity_gain <= 1.4

    def test_compressed_spec_validation(self):
        inner = KVCacheSpec(n_layers=1, kv_heads=1, head_dim=8)
        with pytest.raises(ConfigError):
            CompressedKVCacheSpec(inner, ratio=0.9)

    def test_attention_kernel_faster(self):
        plain = paged_attention_decode(G, 32, 4096, 32, 8, 128)
        comp = paged_attention_decode_compressed(G, 32, 4096, 32, 8, 128)
        assert 1.2 < plain.time_s / comp.time_s < 1.45

    def test_attention_alu_bounded(self):
        comp = paged_attention_decode_compressed(G, 32, 4096, 32, 8, 128)
        assert comp.details["alu_time_s"] < comp.details["mem_time_s"]

    def test_engine_integration(self):
        from repro.serving.backends import get_backend
        from repro.serving.engine import InferenceEngine
        from repro.serving.models import get_model

        model = get_model("llama3.1-8b")
        base = InferenceEngine(model, G, get_backend("zipserv"))
        comp = InferenceEngine(
            model, G, get_backend("zipserv"), kv_compression_ratio=1.4
        )
        assert comp.plan.kv_tokens > 1.3 * base.plan.kv_tokens
        b = base.run(32, 128, 512)
        c = comp.run(32, 128, 512)
        assert c.throughput_tok_s > b.throughput_tok_s

    def test_engine_validation(self):
        from repro.serving.backends import get_backend
        from repro.serving.engine import InferenceEngine
        from repro.serving.models import get_model

        with pytest.raises(ConfigError):
            InferenceEngine(
                get_model("llama3.1-8b"), G, get_backend("zipserv"),
                kv_compression_ratio=0.5,
            )


class TestCheckpoint:
    def test_save_load_roundtrip(self, tmp_path):
        tensors = {
            "attn_qkv": gaussian_bf16_matrix(128, 64, seed=10),
            "mlp_gate": gaussian_bf16_matrix(256, 128, seed=11),
        }
        receipt = save_checkpoint(tensors, tmp_path / "ckpt")
        assert receipt.ratio > 1.2
        loaded = load_checkpoint(tmp_path / "ckpt")
        assert set(loaded) == set(tensors)
        for name in tensors:
            assert np.array_equal(loaded[name], tensors[name])

    def test_unsafe_names_rejected(self, tmp_path):
        with pytest.raises(FormatError):
            save_checkpoint(
                {"../evil": gaussian_bf16_matrix(64, 64, seed=12)}, tmp_path
            )

    def test_empty_dir_rejected(self, tmp_path):
        with pytest.raises(FormatError):
            load_checkpoint(tmp_path)

    def test_delta_snapshot_roundtrip(self):
        base = gaussian_bf16_matrix(128, 128, seed=13)
        current = base.copy()
        rng = np.random.default_rng(0)
        touched = rng.integers(0, base.size, 300)
        current.ravel()[touched] ^= np.uint16(3)  # small mantissa updates
        snap = delta_snapshot("layer", base, current)
        assert np.array_equal(restore_snapshot(base, snap), current)

    def test_delta_much_smaller_than_full(self):
        base = gaussian_bf16_matrix(256, 256, seed=14)
        current = base.copy()
        current.ravel()[:500] ^= np.uint16(1)
        snap = delta_snapshot("layer", base, current)
        # Sparse training deltas compress far beyond the ~1.4x weight ratio.
        assert snap.ratio > 8.0

    def test_delta_validation(self):
        base = gaussian_bf16_matrix(32, 32, seed=15)
        with pytest.raises(FormatError):
            delta_snapshot("x", base, gaussian_bf16_matrix(32, 16, seed=16))
        snap = delta_snapshot("x", base, base)
        with pytest.raises(FormatError):
            restore_snapshot(gaussian_bf16_matrix(16, 16, seed=17), snap)

    def test_identical_snapshot_tiny(self):
        base = gaussian_bf16_matrix(128, 128, seed=18)
        snap = delta_snapshot("same", base, base)
        assert snap.compressed_nbytes < base.nbytes / 20


class TestQuantCombo:
    def test_quantize_error_bounded(self):
        w = gaussian_bf16_matrix(128, 256, sigma=0.015, seed=20)
        layer = quantize_int8(w)
        back = bf16_to_f32(dequantize_int8(layer))
        orig = bf16_to_f32(w)
        scale = np.abs(orig).max(axis=1, keepdims=True)
        assert np.all(np.abs(back - orig) <= scale / 127.0 + 1e-6)

    def test_int8_plane_roundtrip_exact(self):
        w = gaussian_bf16_matrix(64, 512, sigma=0.02, seed=21)
        layer = quantize_int8(w)
        blob = compress_quantized(layer)
        restored = decompress_quantized(blob)
        assert np.array_equal(restored.q, layer.q)
        assert np.array_equal(restored.scales, layer.scales)

    def test_residual_redundancy_band(self):
        w = gaussian_bf16_matrix(512, 1024, sigma=0.015, seed=22)
        blob = compress_quantized(quantize_int8(w))
        assert 1.02 < blob.ratio_vs_int8 < 1.25
        assert 6.5 < blob.bits_per_weight < 7.9

    def test_quantize_validation(self):
        with pytest.raises(FormatError):
            quantize_int8(np.zeros((4, 4), dtype=np.float32))
        with pytest.raises(FormatError):
            quantize_int8(np.zeros(16, dtype=np.uint16))

    def test_zipquant_kernel_faster_than_marlin(self):
        zq = zipquant_gemm(G, 28672, 4096, 32, bits_per_weight=7.4)
        ml = marlin_w8a16_gemm(G, 28672, 4096, 32)
        assert zq.time_s < ml.time_s

    def test_zipquant_validation(self):
        with pytest.raises(ConfigError):
            zipquant_gemm(G, 0, 10, 10)
        with pytest.raises(ConfigError):
            zipquant_gemm(G, 64, 64, 1, bits_per_weight=9.0)


class TestContinuousServing:
    def test_trace_run(self):
        from repro.serving.backends import get_backend
        from repro.serving.engine import InferenceEngine
        from repro.serving.models import get_model
        from repro.serving.scheduler import Request, SchedulerLimits

        engine = InferenceEngine(
            get_model("llama3.1-8b"), G, get_backend("zipserv")
        )
        requests = [
            Request(i, prompt_len=64, max_new_tokens=32, arrival_s=i * 0.01)
            for i in range(12)
        ]
        result = engine.run_continuous(
            requests, SchedulerLimits(max_num_seqs=8)
        )
        assert result.n_requests == 12
        assert result.tokens_generated == 12 * 32
        assert result.peak_running <= 8
        assert result.latency_p50_s <= result.latency_max_s
        assert result.throughput_tok_s > 0

    def test_empty_trace_rejected(self):
        from repro.serving.backends import get_backend
        from repro.serving.engine import InferenceEngine
        from repro.serving.models import get_model

        engine = InferenceEngine(
            get_model("llama3.1-8b"), G, get_backend("zipserv")
        )
        with pytest.raises(ConfigError):
            engine.run_continuous([])

    def test_zipserv_beats_vllm_on_trace(self):
        from repro.serving.backends import get_backend
        from repro.serving.engine import InferenceEngine
        from repro.serving.models import get_model
        from repro.serving.scheduler import Request

        model = get_model("llama3.1-8b")

        def trace():
            return [
                Request(i, prompt_len=128, max_new_tokens=64,
                        arrival_s=i * 0.02)
                for i in range(16)
            ]

        z = InferenceEngine(model, G, get_backend("zipserv"))
        v = InferenceEngine(model, G, get_backend("vllm"))
        zr = z.run_continuous(trace())
        vr = v.run_continuous(trace())
        assert zr.throughput_tok_s > vr.throughput_tok_s


class TestExtensionExperiments:
    @pytest.mark.parametrize(
        "name", ["ext_kvcomp", "ext_quant", "ext_continuous"]
    )
    def test_runs(self, name):
        from repro.experiments import run_experiment

        result = run_experiment(name, quick=True)
        assert result.rows and result.summary

    def test_kvcomp_consistency(self):
        from repro.experiments import run_experiment

        s = run_experiment("ext_kvcomp", quick=True).summary
        assert s["block_ratio_measured"] == pytest.approx(
            s["block_ratio_analytic"], rel=0.06
        )
        assert s["capacity_gain"] == pytest.approx(
            s["block_ratio_analytic"], rel=0.05
        )
        assert s["e2e_throughput_gain"] > 1.0

    def test_quant_spectrum_ordering(self):
        from repro.experiments import run_experiment

        result = run_experiment("ext_quant", quick=True)
        bits = [row[1] for row in result.rows]
        times = [row[2] for row in result.rows]
        # Fewer bits per weight -> faster kernel, monotonically.
        assert bits == sorted(bits, reverse=True)
        assert times == sorted(times, reverse=True)

    def test_continuous_gain(self):
        from repro.experiments import run_experiment

        s = run_experiment("ext_continuous", quick=True).summary
        assert s["throughput_gain"] > 1.05
        assert s["all_requests_served"] == 1.0
