"""Tests for the step cost-model layer."""

import pytest

from repro.errors import ConfigError
from repro.gpu.specs import get_gpu
from repro.serving.backends import get_backend
from repro.serving.costs import (
    EngineCostModel,
    MemoizedStepCostModel,
    StepCostModel,
)
from repro.serving.engine import InferenceEngine
from repro.serving.models import get_model

G = get_gpu("rtx4090")
M = get_model("llama3.1-8b")


def model(backend="zipserv", **kw) -> EngineCostModel:
    return EngineCostModel(M, G, get_backend(backend), **kw)


class TestEngineCostModel:
    def test_satisfies_protocol(self):
        assert isinstance(model(), StepCostModel)
        assert isinstance(MemoizedStepCostModel(model()), StepCostModel)

    def test_engine_delegates_to_cost_model(self):
        eng = InferenceEngine(M, G, get_backend("zipserv"))
        assert eng.decode_step(8, 512).total_s == pytest.approx(
            eng.costs.decode_step(8, 512).total_s
        )
        assert eng.linear_time(32) is eng.costs.linear_time(32)

    def test_linear_cached_identity(self):
        costs = model()
        assert costs.linear_time(64) is costs.linear_time(64)

    def test_mixed_step_decode_only_matches_decode_step(self):
        costs = model()
        assert costs.mixed_step(16, 512, 0, 0).total_s == pytest.approx(
            costs.decode_step(16, 512).total_s
        )

    def test_mixed_step_prefill_only_matches_prefill_step(self):
        costs = model()
        # One sequence prefilling its whole prompt in one chunk.
        assert costs.mixed_step(0, 0, 1, 256).total_s == pytest.approx(
            costs.prefill_step(1, 256).total_s
        )

    def test_mixed_step_costs_more_than_parts_alone(self):
        costs = model()
        mixed = costs.mixed_step(8, 512, 2, 1024)
        assert mixed.total_s > costs.decode_step(8, 512).attention_s
        assert mixed.attention_s > 0

    def test_mixed_step_rejects_empty(self):
        with pytest.raises(ConfigError):
            model().mixed_step(0, 0, 0, 0)

    def test_kv_ratio_validation(self):
        with pytest.raises(ConfigError):
            model(kv_compression_ratio=0.5)


class TestMemoizedCostModel:
    def test_bucketing_caches(self):
        memo = MemoizedStepCostModel(model(), ctx_bucket=64)
        first = memo.decode_step(8, 100)
        again = memo.decode_step(8, 120)  # same 64-token bucket (128)
        assert again == first
        assert memo.hits == 1 and memo.misses == 1

    def test_cache_hit_returns_fresh_copy(self):
        # Callers may accumulate into a returned breakdown (add() mutates
        # in place); that must never poison the cache.
        memo = MemoizedStepCostModel(model(), ctx_bucket=64)
        first = memo.decode_step(8, 100)
        first.add(first)  # double it in place
        again = memo.decode_step(8, 100)
        assert again is not first
        assert again.total_s == pytest.approx(first.total_s / 2)

    def test_bucket_boundary_splits(self):
        memo = MemoizedStepCostModel(model(), ctx_bucket=64)
        a = memo.decode_step(8, 128)   # bucket 128
        b = memo.decode_step(8, 129)   # bucket 192
        assert a != b

    def test_rounds_up_never_down(self):
        exact = model()
        memo = MemoizedStepCostModel(model(), ctx_bucket=64)
        # The memoized charge uses the bucket top, so it can only be the
        # exact cost at a context >= the requested one.
        assert (memo.decode_step(8, 100).total_s
                >= exact.decode_step(8, 100).total_s)

    def test_component_queries_stay_exact(self):
        exact = model()
        memo = MemoizedStepCostModel(model(), ctx_bucket=64)
        assert memo.attention_time(8, 100, "decode") == pytest.approx(
            exact.attention_time(8, 100, "decode")
        )
        assert memo.elementwise_time(33) == pytest.approx(
            exact.elementwise_time(33)
        )

    def test_mixed_step_cached_by_bucket(self):
        memo = MemoizedStepCostModel(model(), ctx_bucket=64, token_bucket=16)
        a = memo.mixed_step(8, 100, 1, 100)
        b = memo.mixed_step(8, 120, 1, 110)  # both bucket to (128, 112)
        assert a == b
        assert memo.hits == 1 and memo.misses == 1

    def test_bucket_validation(self):
        with pytest.raises(ConfigError):
            MemoizedStepCostModel(model(), ctx_bucket=0)
