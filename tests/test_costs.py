"""Tests for the step cost-model layer."""

import pytest

from repro.errors import ConfigError
from repro.gpu.specs import get_gpu
from repro.serving.backends import get_backend
from repro.serving.costs import (
    EngineCostModel,
    MemoizedStepCostModel,
    StepCostModel,
)
from repro.serving.engine import InferenceEngine
from repro.serving.models import get_model

G = get_gpu("rtx4090")
M = get_model("llama3.1-8b")


def model(backend="zipserv", **kw) -> EngineCostModel:
    return EngineCostModel(M, G, get_backend(backend), **kw)


class TestEngineCostModel:
    def test_satisfies_protocol(self):
        assert isinstance(model(), StepCostModel)
        assert isinstance(MemoizedStepCostModel(model()), StepCostModel)

    def test_engine_delegates_to_cost_model(self):
        eng = InferenceEngine(M, G, get_backend("zipserv"))
        assert eng.decode_step(8, 512).total_s == pytest.approx(
            eng.costs.decode_step(8, 512).total_s
        )
        assert eng.linear_time(32) is eng.costs.linear_time(32)

    def test_linear_cached_identity(self):
        costs = model()
        assert costs.linear_time(64) is costs.linear_time(64)

    def test_mixed_step_decode_only_matches_decode_step(self):
        costs = model()
        assert costs.mixed_step(16, 512, 0, 0).total_s == pytest.approx(
            costs.decode_step(16, 512).total_s
        )

    def test_mixed_step_prefill_only_matches_prefill_step(self):
        costs = model()
        # One sequence prefilling its whole prompt in one chunk.
        assert costs.mixed_step(0, 0, 1, 256).total_s == pytest.approx(
            costs.prefill_step(1, 256).total_s
        )

    def test_mixed_step_costs_more_than_parts_alone(self):
        costs = model()
        mixed = costs.mixed_step(8, 512, 2, 1024)
        assert mixed.total_s > costs.decode_step(8, 512).attention_s
        assert mixed.attention_s > 0

    def test_mixed_step_rejects_empty(self):
        with pytest.raises(ConfigError):
            model().mixed_step(0, 0, 0, 0)

    def test_kv_ratio_validation(self):
        with pytest.raises(ConfigError):
            model(kv_compression_ratio=0.5)


class TestMemoizedCostModel:
    def test_bucketing_caches(self):
        memo = MemoizedStepCostModel(model(), ctx_bucket=64)
        first = memo.decode_step(8, 100)
        again = memo.decode_step(8, 120)  # same 64-token bucket (128)
        assert again == first
        assert memo.hits == 1 and memo.misses == 1

    def test_cache_hit_returns_fresh_copy(self):
        # Callers may accumulate into a returned breakdown (add() mutates
        # in place); that must never poison the cache.
        memo = MemoizedStepCostModel(model(), ctx_bucket=64)
        first = memo.decode_step(8, 100)
        first.add(first)  # double it in place
        again = memo.decode_step(8, 100)
        assert again is not first
        assert again.total_s == pytest.approx(first.total_s / 2)

    def test_bucket_boundary_splits(self):
        memo = MemoizedStepCostModel(model(), ctx_bucket=64)
        a = memo.decode_step(8, 128)   # bucket 128
        b = memo.decode_step(8, 129)   # bucket 192
        assert a != b

    def test_rounds_up_never_down(self):
        exact = model()
        memo = MemoizedStepCostModel(model(), ctx_bucket=64)
        # The memoized charge uses the bucket top, so it can only be the
        # exact cost at a context >= the requested one.
        assert (memo.decode_step(8, 100).total_s
                >= exact.decode_step(8, 100).total_s)

    def test_component_queries_stay_exact(self):
        exact = model()
        memo = MemoizedStepCostModel(model(), ctx_bucket=64)
        assert memo.attention_time(8, 100, "decode") == pytest.approx(
            exact.attention_time(8, 100, "decode")
        )
        assert memo.elementwise_time(33) == pytest.approx(
            exact.elementwise_time(33)
        )

    def test_mixed_step_cached_by_bucket(self):
        memo = MemoizedStepCostModel(model(), ctx_bucket=64, token_bucket=16)
        a = memo.mixed_step(8, 100, 1, 100)
        b = memo.mixed_step(8, 120, 1, 110)  # both bucket to (128, 112)
        assert a == b
        assert memo.hits == 1 and memo.misses == 1

    def test_bucket_validation(self):
        with pytest.raises(ConfigError):
            MemoizedStepCostModel(model(), ctx_bucket=0)

    def test_cache_info_tracks_kinds(self):
        memo = MemoizedStepCostModel(model(), ctx_bucket=64)
        memo.decode_step(8, 100)
        memo.decode_step(8, 120)  # same bucket: hit
        memo.prefill_step(1, 256)
        memo.mixed_step(8, 100, 1, 100)
        info = memo.cache_info()
        assert info["decode"] == {"hits": 1, "misses": 1, "size": 1}
        assert info["prefill"] == {"hits": 0, "misses": 1, "size": 1}
        assert info["mixed"] == {"hits": 0, "misses": 1, "size": 1}
        # Per-kind counters partition the global ones.
        assert memo.hits == 1 and memo.misses == 3


class TestBatchDecodeCosts:
    """decode_step_batch must be bit-identical to the scalar paths."""

    CTXS = [1, 7, 64, 129, 1000, 4096]

    @pytest.mark.parametrize(
        "kwargs",
        [{}, {"kv_compression_ratio": 4.0}],
        ids=["raw", "kvcomp"],
    )
    def test_engine_batch_matches_scalar_bitwise(self, kwargs):
        costs = model(**kwargs)
        batch = costs.decode_step_batch(8, self.CTXS)
        assert batch.shape == (len(self.CTXS),)
        for i, ctx in enumerate(self.CTXS):
            # Exact equality on purpose: the batch path replays the same
            # float ops elementwise, so == is the contract, not approx.
            assert batch[i] == costs.decode_step(8, ctx).total_s
            assert batch[i] == costs.mixed_step(8, ctx, 0, 0).total_s

    @pytest.mark.parametrize("backend", ["transformers", "vllm", "dfloat11"])
    def test_engine_batch_across_backends(self, backend):
        costs = model(backend)
        batch = costs.decode_step_batch(4, self.CTXS)
        for i, ctx in enumerate(self.CTXS):
            assert batch[i] == costs.decode_step(4, ctx).total_s

    def test_memoized_batch_prices_like_window_path(self):
        # The serving cores price decode-only windows via mixed_step;
        # the batch fast path must agree bitwise AND share the same
        # cache entries so scalar/batch interleaving stays coherent.
        memo = MemoizedStepCostModel(model(), ctx_bucket=64)
        ctxs = [100, 120, 128, 129]  # buckets: 128, 128, 128, 192
        batch = memo.decode_step_batch(8, ctxs)
        for i, ctx in enumerate(ctxs):
            assert batch[i] == memo.mixed_step(8, ctx, 0, 0).total_s
        info = memo.cache_info()
        assert info["mixed"]["misses"] == 2   # two distinct buckets
        assert info["mixed"]["size"] == 2
        # The scalar calls above all hit entries the batch call seeded.
        assert info["mixed"]["hits"] == 2 + len(ctxs)
