"""Parameter-variant and fuzz coverage for the entropy codecs.

The default configurations are covered elsewhere; these tests exercise the
non-default container parameters a deployment might tune (LUT width, chunk
size, probability resolution, stream counts) across the same bit-exactness
contract.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codecs.huffman import HuffmanCodec
from repro.codecs.rans import RansCodec


def skewed(n: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return (rng.geometric(0.4, size=n).clip(1, 50) + 100).astype(np.uint8)


class TestHuffmanVariants:
    @pytest.mark.parametrize("max_len", [10, 12, 14, 16])
    def test_lut_widths(self, max_len):
        codec = HuffmanCodec(max_len=max_len)
        data = skewed(20_000, seed=max_len)
        stream = codec.encode(data)
        assert stream.meta["lengths"].max() <= max_len
        assert np.array_equal(codec.decode(stream), data)

    @pytest.mark.parametrize("chunk", [32, 100, 1024, 100_000])
    def test_chunk_sizes(self, chunk):
        codec = HuffmanCodec(chunk_symbols=chunk)
        data = skewed(5_000, seed=chunk)
        assert np.array_equal(codec.decode(codec.encode(data)), data)

    def test_chunk_metadata_scales_inversely(self):
        data = skewed(50_000, seed=1)
        fine = HuffmanCodec(chunk_symbols=256).encode(data)
        coarse = HuffmanCodec(chunk_symbols=8192).encode(data)
        # Smaller chunks -> more offsets -> larger container.
        assert fine.header_nbytes > coarse.header_nbytes
        assert fine.payload.nbytes == coarse.payload.nbytes

    @settings(max_examples=15)
    @given(st.integers(9, 16), st.binary(min_size=1, max_size=1500))
    def test_fuzz_lut_width_and_data(self, max_len, raw):
        data = np.frombuffer(raw, dtype=np.uint8).copy()
        codec = HuffmanCodec(max_len=max_len, chunk_symbols=128)
        assert np.array_equal(codec.decode(codec.encode(data)), data)


class TestRansVariants:
    @pytest.mark.parametrize("prob_bits", [10, 12, 14])
    def test_probability_resolutions(self, prob_bits):
        codec = RansCodec(prob_bits=prob_bits)
        data = skewed(30_000, seed=prob_bits)
        assert np.array_equal(codec.decode(codec.encode(data)), data)

    @pytest.mark.parametrize("streams", [32, 64, 256, 1024])
    def test_stream_counts(self, streams):
        codec = RansCodec(num_streams=streams)
        data = skewed(20_000, seed=streams)
        stream = codec.encode(data)
        assert stream.meta["num_streams"] == streams
        assert np.array_equal(codec.decode(stream), data)

    def test_more_streams_cost_more_header(self):
        data = skewed(20_000, seed=2)
        few = RansCodec(num_streams=32).encode(data)
        many = RansCodec(num_streams=1024).encode(data)
        assert many.header_nbytes > few.header_nbytes

    def test_low_resolution_compresses_worse(self):
        data = skewed(100_000, seed=3)
        hi = RansCodec(prob_bits=14).encode(data)
        lo = RansCodec(prob_bits=10).encode(data)
        # Coarser probabilities waste code space (weakly).
        assert lo.payload.nbytes >= hi.payload.nbytes * 0.98

    @settings(max_examples=15)
    @given(st.sampled_from([10, 12, 14]), st.binary(min_size=0, max_size=1200))
    def test_fuzz_resolution_and_data(self, prob_bits, raw):
        data = np.frombuffer(raw, dtype=np.uint8).copy()
        codec = RansCodec(prob_bits=prob_bits, num_streams=32)
        assert np.array_equal(codec.decode(codec.encode(data)), data)
