"""Tests for the end-to-end inference engine."""

import pytest

from repro.errors import CapacityError, ConfigError
from repro.gpu.specs import get_gpu
from repro.serving.backends import get_backend
from repro.serving.engine import InferenceEngine, StepBreakdown
from repro.serving.models import get_model

G4090 = get_gpu("rtx4090")
L40S = get_gpu("l40s")
M8B = get_model("llama3.1-8b")


def engine(backend="zipserv", model=M8B, gpu=G4090, **kw) -> InferenceEngine:
    return InferenceEngine(model, gpu, get_backend(backend), **kw)


class TestStepBreakdown:
    def test_total(self):
        b = StepBreakdown(linear_s=1, attention_s=2, comm_s=3, other_s=4,
                          dispatch_s=5)
        assert b.total_s == 15

    def test_scaled_and_add(self):
        b = StepBreakdown(linear_s=2.0)
        b.add(StepBreakdown(linear_s=1.0, other_s=4.0))
        assert b.linear_s == 3.0
        half = b.scaled(0.5)
        assert half.linear_s == 1.5 and half.other_s == 2.0


class TestComponents:
    def test_linear_time_cached(self):
        eng = engine()
        first = eng.linear_time(32)
        assert eng.linear_time(32) is first

    def test_attention_grows_with_context(self):
        eng = engine()
        assert (eng.attention_time(32, 2048, "decode")
                > eng.attention_time(32, 256, "decode"))

    def test_decode_step_positive_parts(self):
        step = engine().decode_step(32, 512)
        assert step.linear_s > 0
        assert step.attention_s > 0
        assert step.other_s > 0
        assert step.dispatch_s > 0
        assert step.comm_s == 0.0  # single GPU

    def test_prefill_larger_than_decode(self):
        eng = engine()
        assert (eng.prefill_step(32, 512).total_s
                > eng.decode_step(32, 512).total_s)


class TestRuns:
    def test_totals_consistent(self):
        res = engine().run(8, 64, 32)
        assert res.total_s == pytest.approx(res.prefill_s + res.decode_s)
        assert res.throughput_tok_s == pytest.approx(
            8 * 32 / res.total_s
        )
        assert res.latency_s == res.total_s

    def test_zipserv_beats_vllm(self):
        zres = engine("zipserv").run(32, 128, 256)
        vres = engine("vllm").run(32, 128, 256)
        ratio = zres.throughput_tok_s / vres.throughput_tok_s
        assert 1.1 < ratio < 1.4  # paper avg 1.22x

    def test_backend_ordering(self):
        results = {
            name: engine(name).run(32, 128, 128).throughput_tok_s
            for name in ("zipserv", "vllm", "transformers", "dfloat11")
        }
        assert (results["zipserv"] > results["vllm"]
                > results["transformers"] > results["dfloat11"])

    def test_longer_outputs_cost_more(self):
        eng = engine()
        t1 = eng.run(8, 64, 64).total_s
        t2 = eng.run(8, 64, 256).total_s
        assert t2 > 3 * t1

    def test_validation(self):
        with pytest.raises(ConfigError):
            engine().run(0, 64, 64)


class TestPreemption:
    def test_vllm_preempts_at_long_context(self):
        vres = engine("vllm").run(32, 128, 2048)
        assert vres.n_waves >= 2
        assert vres.effective_batch < 32

    def test_zipserv_fits_where_vllm_preempts(self):
        # Figure 17's point: freed weight memory becomes KV capacity.
        zres = engine("zipserv").run(32, 128, 2048)
        vres = engine("vllm").run(32, 128, 2048)
        assert zres.n_waves == 1
        assert vres.n_waves >= 2
        ratio = zres.throughput_tok_s / vres.throughput_tok_s
        assert ratio > 1.4  # paper: 1.66x at this configuration

    def test_impossible_context_raises(self):
        with pytest.raises(CapacityError):
            engine("vllm").run(1, 128, 200_000)

    def test_preempted_tokens_all_produced(self):
        res = engine("vllm").run(32, 128, 2048)
        # Throughput accounting uses the requested token count.
        assert res.batch_size * res.output_len == 32 * 2048


class TestParallel:
    def test_tp_reduces_per_gpu_weights(self):
        m24 = get_model("mistral-24b")
        eng = engine("zipserv", model=m24, gpu=L40S, tensor_parallel=2)
        assert eng.plan.weight_gib < 17

    def test_tp_has_comm(self):
        m24 = get_model("mistral-24b")
        eng = engine("vllm", model=m24, gpu=L40S, tensor_parallel=2)
        assert eng.decode_step(32, 256).comm_s > 0

    def test_tp_speeds_up_decode(self):
        m24 = get_model("mistral-24b")
        t2 = engine("vllm", model=m24, gpu=L40S, tensor_parallel=2)
        t4 = engine("vllm", model=m24, gpu=L40S, tensor_parallel=4)
        assert (t4.decode_step(32, 256).total_s
                < t2.decode_step(32, 256).total_s)

    def test_dfloat11_rejects_tp(self):
        with pytest.raises(ConfigError):
            engine("dfloat11", model=get_model("llama3.1-70b"), gpu=L40S,
                   tensor_parallel=4)

    def test_dfloat11_pipeline_parallel(self):
        eng = engine("dfloat11", model=get_model("llama3.1-70b"), gpu=L40S,
                     pipeline_parallel=4)
        res = eng.run(4, 64, 16)
        assert res.throughput_tok_s > 0

    def test_70b_on_four_l40s(self):
        m70 = get_model("llama3.1-70b")
        zres = engine("zipserv", model=m70, gpu=L40S,
                      tensor_parallel=4).run(8, 64, 32)
        vres = engine("vllm", model=m70, gpu=L40S,
                      tensor_parallel=4).run(8, 64, 32)
        assert zres.throughput_tok_s > vres.throughput_tok_s


class TestFigure17Numbers:
    def test_step_scale(self):
        # vLLM decode step at BS32 / ctx ~1024 on 4090: paper total ~30 ms.
        step = engine("vllm").decode_step(32, 1024)
        assert 0.020 < step.total_s < 0.040

    def test_linear_dominates(self):
        step = engine("vllm").decode_step(32, 1024)
        assert step.linear_s / step.total_s > 0.6  # paper: 83.6%
