"""End-to-end checks of every experiment driver against paper bands.

These assert the *shape* of each result — who wins, by roughly what factor,
where crossovers fall — not exact milliseconds (the substrate is a model,
not the authors' testbed).
"""

import pytest

from repro.errors import UnknownSpecError
from repro.experiments import list_experiments, run_experiment

ALL = list_experiments()


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        expected = {
            "fig01", "fig02", "fig05", "fig11", "fig12", "fig13", "fig14",
            "fig15", "fig16", "fig17", "fig18", "tab_codeword",
            "tab_memory", "tab_offline_cost", "tab_theory",
            "ext_kvcomp", "ext_quant", "ext_continuous", "ext_disagg",
            "ext_codec_matrix", "ext_autotune", "tab_pipeline",
        }
        assert set(ALL) == expected

    def test_unknown_experiment(self):
        with pytest.raises(UnknownSpecError):
            run_experiment("fig99")


@pytest.mark.parametrize("name", ALL)
def test_runs_and_reports(name):
    result = run_experiment(name, quick=True)
    assert result.rows, name
    assert result.summary, name
    assert result.report()  # renders without error
    assert result.table(max_rows=5)


class TestFig01:
    def test_band(self):
        s = run_experiment("fig01", quick=True).summary
        assert 1.4 < s["decomp_over_gemm_min"]
        assert s["decomp_over_gemm_max"] < 4.0


class TestFig02:
    def test_band(self):
        s = run_experiment("fig02", quick=True).summary
        assert s["min_top3_coverage"] > 0.60
        assert s["min_top7_coverage"] > 0.95
        assert 2.3 < s["entropy_bits_min"] <= s["entropy_bits_max"] < 2.9
        assert s["contiguity_rate"] > 0.99
        assert 0.95 < s["avg_window_coverage"] < 0.99


class TestFig05:
    def test_band(self):
        s = run_experiment("fig05", quick=True).summary
        assert s["ci_degradation_n8"] == pytest.approx(0.623, abs=0.01)
        assert s["ci_degradation_n64"] == pytest.approx(0.617, abs=0.01)
        assert 0.45 < s["ci_gain_avg"] < 0.55


class TestFig11:
    def test_band(self):
        s = run_experiment("fig11", quick=True).summary
        for gpu in ("rtx4090", "l40s"):
            assert 1.15 < s[f"zipgemm_avg_{gpu}"] < 1.5
            assert s[f"zipgemm_peak_{gpu}"] > 1.35
            assert s[f"zipgemm_min_{gpu}"] < 1.0  # small layers lose
            assert s[f"dietgpu_avg_{gpu}"] < 0.45
            assert s[f"nvcomp_avg_{gpu}"] < 0.45
            assert s[f"dfloat11_avg_{gpu}"] < 0.55


class TestFig12:
    def test_band(self):
        s = run_experiment("fig12", quick=True).summary
        assert s["dram_read_reduction"] == pytest.approx(0.293, abs=0.03)
        assert 0.3 < s["alu_busy_frac"] < 0.8
        assert 0.5 < s["tc_util_vs_cublas"] < 0.9
        assert s["zip_bank_conflicts"] < 1e4
        assert s["lut_bank_conflicts"] > 1e6


class TestFig13:
    def test_band(self):
        s = run_experiment("fig13", quick=True).summary
        assert 1.7 < s["speedup_vs_dietgpu"] < 2.5
        assert 1.5 < s["speedup_vs_nvcomp"] < 2.3
        assert 1.02 < s["speedup_vs_dfloat11"] < 1.3


class TestFig14:
    def test_band(self):
        s = run_experiment("fig14", quick=True).summary
        assert s["rtx5090_speedup_llama3.1"] > 1.25
        # ZipGEMM narrows the consumer/datacenter deficit.
        assert (s["rtx5090_deficit_zip_llama3.1"]
                < s["rtx5090_deficit_std_llama3.1"])
        assert 0.85 < s["rtx4090zip_vs_a100cublas_llama3.1"] < 1.2


class TestFig15:
    def test_band(self):
        s = run_experiment("fig15", quick=True).summary
        assert s["fused_speedup_n8"] > 1.25
        assert s["fused_speedup_n32"] > 1.25
        assert s["prefill_overhead_n8192"] < 0.06
        assert s["prefill_overhead_n16384"] < 0.04


class TestFig16:
    def test_band(self):
        s = run_experiment("fig16", quick=True).summary
        assert 1.1 < s["throughput_vs_vllm"] < 1.45
        assert 2.2 < s["throughput_vs_transformers"] < 4.5
        assert s["throughput_vs_dfloat11"] > 5.0
        assert 0.08 < s["latency_cut_vs_vllm"] < 0.30


class TestFig17:
    def test_band(self):
        s = run_experiment("fig17", quick=True).summary
        assert s["linear_speedup"] > 1.2
        assert s["vllm_weights_gib"] == pytest.approx(14.96, abs=0.05)
        assert s["vllm_kv_gib"] == pytest.approx(5.07, abs=0.4)
        assert 1.5 < s["kv_expansion"] < 2.1


class TestFig18:
    def test_band(self):
        s = run_experiment("fig18", quick=True).summary
        assert s["zipgemm_vs_cublas_min"] < 1.0  # loses somewhere on HBM
        assert s["best_decomp_speedup"] > 1.5
        assert 1.25 < s["marlin_gap"] < 1.55
        assert s["bitwidth_ratio"] == pytest.approx(1.41, abs=0.05)


class TestTables:
    def test_codeword(self):
        s = run_experiment("tab_codeword", quick=True).summary
        assert s["avg_bits_3"] < s["avg_bits_2"]
        assert s["avg_bits_3"] < s["avg_bits_4"]
        assert 10.8 < s["avg_bits_3"] < 11.8
        assert 10.3 < s["entropy_bound_bits"] < 11.0

    def test_memory(self):
        s = run_experiment("tab_memory", quick=True).summary
        for key in ("fraction_8b", "fraction_m24b", "fraction_70b"):
            assert 0.69 < s[key] < 0.74

    def test_offline_cost(self):
        s = run_experiment("tab_offline_cost", quick=True).summary
        assert s["extrapolated_8b_minutes"] < 30

    def test_theory(self):
        s = run_experiment("tab_theory", quick=True).summary
        assert s["all_unimodal"] == 1.0
        assert s["all_top7_contiguous"] == 1.0
        assert s["max_coverage_error"] < 0.01


class TestExtDisagg:
    def test_band(self):
        s = run_experiment("ext_disagg", quick=True).summary
        assert s["all_requests_served"] == 1.0
        # Wire bytes drop by exactly the codec ratio (~1.4x -> ~29% cut).
        assert s["transfer_ratio"] > 1.3
        assert 0.2 < s["wire_bytes_cut"] < 0.4
        # On the starved link the codec must relieve queueing and finish
        # the trace sooner.
        assert s["queue_p95_cut"] > 0.0
        assert s["makespan_cut"] > 0.0
        # Backpressure sweep: every watermark bounds decode-pool peak KV
        # occupancy (near 1 - watermark, modulo decode growth), tighter
        # watermarks never raise the ceiling, and the tightest watermark
        # visibly stalls admission below the feedback-free baseline.
        assert s["bp_peaks_bounded_by_watermark"] == 1.0
        assert s["bp_peaks_monotone"] == 1.0
        assert s["bp_stall_engaged"] == 1.0
        assert s["bp_tightest_peak_kv"] < s["bp_baseline_peak_kv"]


class TestExtCodecMatrix:
    def test_band(self):
        s = run_experiment("ext_codec_matrix", quick=True).summary
        assert s["all_requests_served"] == 1.0
        # The acceptance criterion: a real sweep, not a token pair.
        assert s["n_combos"] >= 6.0
        # Each slot contributes: weight codec alone helps colocated
        # serving; kv+wire compression alone helps the starved link; the
        # full stack composes at least as well as kv+wire alone.
        assert s["weights_only_makespan_cut"] > 0.0
        assert s["kv_wire_vs_raw_disagg_cut"] > 0.0
        assert s["full_vs_raw_disagg_cut"] >= s["kv_wire_vs_raw_disagg_cut"]
        assert s["wire_ratio_kvcomp"] > 1.3
