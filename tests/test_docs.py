"""The documentation surface stays truthful.

Three contracts:

* every intra-repo link in ``README.md`` / ``docs/*.md`` resolves
  (same check the CI docs job runs via ``tools/check_docs.py``);
* every ``entry-point:`` name listed in ``docs/adding-a-scenario.md``
  imports and resolves — the recipes cannot drift from the code;
* the commands the README quickstart advertises exist (experiment
  registry, CLI flags).
"""

import importlib
import re
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "tools"))

import check_docs  # noqa: E402

ENTRY_POINT = re.compile(r"entry-point:\s*`([\w.]+)`")


def _resolve(dotted: str):
    """Import the longest module prefix, then getattr the rest."""
    parts = dotted.split(".")
    for split in range(len(parts), 0, -1):
        try:
            obj = importlib.import_module(".".join(parts[:split]))
        except ImportError:
            continue
        for name in parts[split:]:
            obj = getattr(obj, name)
        return obj
    raise ImportError(dotted)


class TestLinks:
    def test_doc_surface_exists(self):
        files = check_docs.doc_files(ROOT)
        names = {f.name for f in files}
        assert "README.md" in names
        assert "ARCHITECTURE.md" in names
        assert "adding-a-scenario.md" in names

    def test_no_broken_intra_repo_links(self):
        broken = check_docs.broken_links(ROOT)
        assert not broken, [
            f"{doc.relative_to(ROOT)}: {target}" for doc, target in broken
        ]


class TestEntryPoints:
    """docs/adding-a-scenario.md names real classes and functions."""

    @pytest.fixture(scope="class")
    def entry_points(self):
        text = (ROOT / "docs" / "adding-a-scenario.md").read_text()
        points = ENTRY_POINT.findall(text)
        assert len(points) >= 10, "recipe entry-point list went missing"
        return points

    def test_every_entry_point_resolves(self, entry_points):
        missing = []
        for dotted in entry_points:
            try:
                assert _resolve(dotted) is not None
            except (ImportError, AttributeError):
                missing.append(dotted)
        assert not missing, missing

    def test_recipes_cover_both_scenario_kinds(self, entry_points):
        assert "repro.serving.scheduler.SchedulerPolicy" in entry_points
        assert "repro.serving.disagg.DisaggregatedCore" in entry_points

    def test_recipe_covers_calibration_and_codec_policy(self, entry_points):
        """The calibration & codec-policy subsystem recipe stays pinned."""
        assert "repro.compression.policy.CodecPolicy" in entry_points
        assert "repro.compression.calibrate" in entry_points
        assert "repro.compression.MeasuredRatioProfile" in entry_points
        assert (
            "repro.serving.engine.InferenceEngine.resolve_codecs"
            in entry_points
        )

    def test_recipe_covers_workload_profiles(self, entry_points):
        """Recipe 6 (capacity measurement) stays pinned."""
        assert "repro.serving.profiles.WorkloadProfile" in entry_points
        assert "repro.serving.profiles.register_profile" in entry_points
        assert "repro.serving.openloop.run_open_loop" in entry_points
        assert "repro.serving.openloop.find_knee" in entry_points

    def test_recipe_covers_routing_policies(self, entry_points):
        """Recipe 7 (fleet layer) stays pinned."""
        assert "repro.serving.router.RoutingPolicy" in entry_points
        assert "repro.serving.router.register_routing_policy" in entry_points
        assert "repro.serving.router.RouterStage" in entry_points
        assert "repro.serving.fleet.FleetConfig" in entry_points
        assert "repro.serving.fleet.FleetCore" in entry_points
        assert "repro.serving.fleet.AutoscalerConfig" in entry_points
        assert "repro.serving.metrics.ReplicaStats" in entry_points

    def test_recipe_covers_sessions_and_prefix_cache(self, entry_points):
        """Recipe 8 (session workloads + prefix cache) stays pinned."""
        assert "repro.serving.trace.session_trace" in entry_points
        assert "repro.serving.profiles.SessionProfile" in entry_points
        assert "repro.serving.prefixcache.PrefixCache" in entry_points
        assert "repro.serving.prefixcache.PrefixCacheConfig" in entry_points
        assert "repro.serving.prefixcache.PrefixCacheStats" in entry_points
        assert "repro.serving.serve.build_prefix_cache" in entry_points
        assert "repro.serving.router.RouterConfig" in entry_points

    def test_recipe_covers_telemetry(self, entry_points):
        """Recipe 9 (telemetry consumers) stays pinned."""
        assert "repro.serving.telemetry.TelemetryConfig" in entry_points
        assert "repro.serving.telemetry.TraceRecorder" in entry_points
        assert (
            "repro.serving.telemetry.RequestAttribution" in entry_points
        )
        assert "repro.serving.telemetry.MetricsRegistry" in entry_points
        assert "repro.serving.telemetry.recording" in entry_points


class TestReadmeCommands:
    """The README quickstart's moving parts exist."""

    def test_experiment_registry_has_advertised_drivers(self):
        from repro.experiments import list_experiments

        names = list_experiments()
        for advertised in ("fig11", "fig16", "fig18", "ext_kvcomp",
                           "ext_continuous", "ext_disagg"):
            assert advertised in names

    def test_experiments_cli_flags(self):
        from repro.experiments.__main__ import main

        assert main(["--list"]) == 0

    def test_examples_referenced_by_readme_exist(self):
        for name in ("quickstart.py", "serve_comparison.py",
                     "capacity_planner.py"):
            assert (ROOT / "examples" / name).exists()
