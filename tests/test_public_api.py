"""Public-API surface stability: exports exist, are documented, and work."""

import importlib
import inspect

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.bf16",
    "repro.codecs",
    "repro.tcatbe",
    "repro.gpu",
    "repro.kernels",
    "repro.serving",
    "repro.core",
    "repro.analysis",
    "repro.extensions",
    "repro.experiments",
]


class TestExports:
    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_entries_resolve(self, package):
        module = importlib.import_module(package)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{package}.{name} missing"

    @pytest.mark.parametrize("package", PACKAGES)
    def test_module_documented(self, package):
        module = importlib.import_module(package)
        assert module.__doc__ and len(module.__doc__.strip()) > 40, package

    def test_version(self):
        assert repro.__version__.count(".") == 2


class TestPublicDocstrings:
    @pytest.mark.parametrize("package", PACKAGES)
    def test_every_public_callable_documented(self, package):
        module = importlib.import_module(package)
        undocumented = []
        for name in getattr(module, "__all__", []):
            obj = getattr(module, name)
            if inspect.isfunction(obj) or inspect.isclass(obj):
                if not (obj.__doc__ or "").strip():
                    undocumented.append(f"{package}.{name}")
        assert not undocumented, undocumented


class TestTopLevelWorkflow:
    def test_registries_consistent(self):
        assert set(repro.GPUS) == {
            "rtx4090", "l40s", "rtx5090", "a100", "h800"
        }
        assert len(repro.MODELS) == 11
        assert set(repro.BACKENDS) == {
            "zipserv", "vllm", "transformers", "dfloat11"
        }

    def test_readme_quickstart_works(self):
        """The README's quickstart snippet, executed verbatim-ish."""
        import numpy as np

        from repro import ZipServ, compress_weights, decompress_weights
        from repro.bf16 import gaussian_bf16_matrix

        w = gaussian_bf16_matrix(512, 512, sigma=0.015)
        m = compress_weights(w)
        assert np.array_equal(decompress_weights(m), w)
        assert 10.8 < m.bits_per_element < 11.6

        zs = ZipServ(model="llama3.1-8b", gpu="rtx4090")
        summary = zs.compression_report().summary()
        assert "GiB" in summary
        assert 8.5 < zs.memory_plan.kv_gib < 10.0
        res = zs.generate(batch_size=32, prompt_len=128, output_len=64)
        assert res.throughput_tok_s > 500
