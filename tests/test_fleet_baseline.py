"""Structural checks on the committed fleet capacity baseline.

``benchmarks/BENCH_fleet_baseline.json`` is a measured artifact (blessed
by ``bench_fleet.py --update-baseline``), so these tests read it rather
than re-measuring: they pin the shape the tooling depends on and the two
headline scale-out properties —

* **KV-aware routing wins**: per profile, the ``least_kv_occupancy``
  fleet's knee is at least the round-robin fleet's (strictly above on
  the heterogeneous ``chat`` mix, where one long prompt occupies the KV
  of many short ones);
* **scale-out is near-linear**: a 4-replica fleet sustains at least
  0.8 × 4 × the single-instance knee, for *both* routing policies.

If a re-bless breaks one of these, the fleet story regressed, not the
test.
"""

import json
from pathlib import Path

import pytest

from repro.serving import list_profiles

BASELINE_PATH = (
    Path(__file__).parent.parent
    / "benchmarks" / "BENCH_fleet_baseline.json"
)

CONFIG_NAMES = ("single", "fleet4_round_robin", "fleet4_least_kv")

#: Extra configs measured on the session profile only (see
#: ``bench_fleet.SESSION_CONFIGS``): the same prefix-cached fleet under
#: session-sticky vs occupancy-balancing routing.
SESSION_PROFILE = "chat_sessions"
SESSION_CONFIG_NAMES = (
    "fleet4_session_affinity", "fleet4_session_least_kv",
)

#: The scale-out acceptance floor: fleet knee ≥ this × N × single knee.
SCALE_OUT_FLOOR = 0.8


@pytest.fixture(scope="module")
def baseline():
    return json.loads(BASELINE_PATH.read_text())


def test_baseline_committed(baseline):
    assert not baseline["config"]["quick"], (
        "the committed baseline must come from a full (bisecting) run,"
        " not --quick"
    )
    assert baseline["config"]["n_replicas"] == 4


def test_every_profile_and_config_present(baseline):
    assert set(baseline["profiles"]) == set(list_profiles())
    for profile, configs in baseline["profiles"].items():
        expected = set(CONFIG_NAMES)
        if profile == SESSION_PROFILE:
            expected |= set(SESSION_CONFIG_NAMES)
        assert set(configs) == expected, profile


def test_knees_positive_and_converged(baseline):
    for profile, configs in baseline["profiles"].items():
        for config, row in configs.items():
            assert row["knee_rps"] > 0, f"{profile}/{config}"
            assert row["n_probes"] >= 2, f"{profile}/{config}"


def test_sim_throughput_fields_present(baseline):
    """Every row carries the sim-speed gate inputs bench_regression reads."""
    for profile, configs in baseline["profiles"].items():
        for config, row in configs.items():
            assert row["n_steps"] > 0, f"{profile}/{config}"
            assert row["events_per_s"] > 0, f"{profile}/{config}"


def test_kv_routing_knee_at_least_round_robin(baseline):
    """KV-occupancy routing never loses to round-robin — open-loop mixes.

    The session profile is exempt: a session's next turn arrives after a
    think time with a prompt grown by its whole history, so the KV
    occupancy a replica shows at routing time says little about the load
    the routed session will impose later, and lkv lands within one
    bisection step of round-robin (the committed rows: 24.93 vs 25.8).
    On session traffic the pinned comparison is the prefix-cached
    ``fleet4_session_*`` pair below, where routing decides hit rate.
    """
    for profile, configs in baseline["profiles"].items():
        if profile == SESSION_PROFILE:
            continue
        rr = configs["fleet4_round_robin"]["knee_rps"]
        lkv = configs["fleet4_least_kv"]["knee_rps"]
        assert lkv >= rr, (
            f"{profile}: least_kv_occupancy knee {lkv} rps below"
            f" round-robin knee {rr} rps"
        )


def test_kv_routing_strictly_wins_on_heterogeneous_chat(baseline):
    """On the mixed-length chat workload the occupancy signal must pay."""
    configs = baseline["profiles"]["chat"]
    rr = configs["fleet4_round_robin"]["knee_rps"]
    lkv = configs["fleet4_least_kv"]["knee_rps"]
    assert lkv > rr


def test_session_affinity_beats_scatter_on_hit_rate(baseline):
    """The fleet session headline: sticky routing is what makes the
    per-replica prefix caches pay.

    Both session configs run the identical prefix-cached fleet; only
    routing differs.  Occupancy balancing scatters a session's turns
    across replicas, so almost every lookup misses the replica-local
    cache — session affinity must hit strictly (and decisively) more
    tokens at the committed equal-load probe, and sustain at least the
    scattered fleet's knee.
    """
    configs = baseline["profiles"][SESSION_PROFILE]
    affinity = configs["fleet4_session_affinity"]
    scatter = configs["fleet4_session_least_kv"]
    assert affinity["hit_rate_probe_rps"] == scatter["hit_rate_probe_rps"]
    assert affinity["token_hit_rate"] > scatter["token_hit_rate"]
    assert affinity["knee_rps"] >= scatter["knee_rps"]


def test_session_cache_fleet_beats_cache_off_fleet(baseline):
    """Cache-on, affinity-routed fleet out-sustains both cache-off fleets."""
    configs = baseline["profiles"][SESSION_PROFILE]
    on = configs["fleet4_session_affinity"]["knee_rps"]
    for off in ("fleet4_round_robin", "fleet4_least_kv"):
        assert on > configs[off]["knee_rps"], off


def test_scale_out_is_near_linear(baseline):
    """4 replicas sustain ≥ 0.8 × 4 × the single knee, both policies."""
    n = baseline["config"]["n_replicas"]
    for profile, configs in baseline["profiles"].items():
        single = configs["single"]["knee_rps"]
        floor = SCALE_OUT_FLOOR * n * single
        for fleet in ("fleet4_round_robin", "fleet4_least_kv"):
            knee = configs[fleet]["knee_rps"]
            assert knee >= floor, (
                f"{profile}/{fleet}: knee {knee} rps below the"
                f" scale-out floor {floor} rps"
                f" ({SCALE_OUT_FLOOR} x {n} x {single})"
            )


def test_curves_cover_the_knee(baseline):
    """Committed curves bracket saturation: sub- and super-knee rates."""
    for profile, configs in baseline["profiles"].items():
        for config, row in configs.items():
            curve = row["curve"]
            knee = row["knee_rps"]
            rates = [point["rate_rps"] for point in curve]
            assert min(rates) < knee < max(rates), f"{profile}/{config}"
            for point in curve:
                assert point["goodput_rps"] >= 0
                assert 0 <= point["slo_violation_rate"] <= 1
