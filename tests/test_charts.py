"""Tests for the ASCII chart renderer."""

import pytest

from repro.errors import ConfigError
from repro.experiments import run_experiment
from repro.experiments.charts import ascii_line_chart, chart_for_result


class TestAsciiChart:
    def test_basic_render(self):
        chart = ascii_line_chart(
            {"a": [(0, 0), (1, 1), (2, 4)]}, width=20, height=6,
            title="squares",
        )
        assert "squares" in chart
        assert "o a" in chart
        assert chart.count("|") >= 12  # bordered rows

    def test_two_series_use_distinct_glyphs(self):
        chart = ascii_line_chart(
            {"a": [(0, 0), (1, 1)], "b": [(0, 1), (1, 0)]},
            width=16, height=5,
        )
        assert "o a" in chart and "x b" in chart

    def test_log_x_axis(self):
        chart = ascii_line_chart(
            {"a": [(1, 0), (10, 1), (100, 2)]}, log_x=True,
            width=16, height=5,
        )
        assert "100" in chart

    def test_constant_series_ok(self):
        chart = ascii_line_chart({"a": [(0, 5), (1, 5)]}, width=10, height=4)
        assert chart

    def test_validation(self):
        with pytest.raises(ConfigError):
            ascii_line_chart({})
        with pytest.raises(ConfigError):
            ascii_line_chart({"a": [(0, 0)]}, width=2, height=2)


class TestChartForResult:
    def test_fig15_chart(self):
        result = run_experiment("fig15", quick=True)
        chart = chart_for_result(result)
        assert chart is not None
        assert "cublas_ms" in chart

    def test_fig16_chart(self):
        result = run_experiment("fig16", quick=True)
        chart = chart_for_result(result)
        assert chart is not None
        assert "zipserv" in chart

    def test_tabular_experiments_have_no_chart(self):
        result = run_experiment("tab_memory", quick=True)
        assert chart_for_result(result) is None
