"""Tests for the model zoo (shapes, parameter counts, KV geometry)."""

import pytest

from repro.errors import UnknownSpecError
from repro.serving.models import MODELS, get_model


class TestRegistry:
    def test_eleven_models_four_families(self):
        assert len(MODELS) == 11
        families = {m.family for m in MODELS.values()}
        assert families == {"llama3.1", "qwen2.5", "gemma3", "mistral"}

    def test_lookup(self):
        assert get_model("LLaMA3.1-8B").name == "llama3.1-8b"
        with pytest.raises(UnknownSpecError):
            get_model("gpt-4")


class TestParameterCounts:
    @pytest.mark.parametrize("name", list(MODELS))
    def test_within_nominal(self, name):
        model = get_model(name)
        count = model.param_count() / 1e9
        assert count == pytest.approx(model.nominal_params_b, rel=0.08), name

    def test_llama8b_exact_structure(self):
        m = get_model("llama3.1-8b")
        # Paper §6.5: 14.96 GiB of BF16 weights.
        assert m.weight_bytes_bf16 / 2**30 == pytest.approx(14.96, abs=0.02)

    def test_llama70b_footprint(self):
        m = get_model("llama3.1-70b")
        assert m.weight_bytes_bf16 / 2**30 == pytest.approx(131.56, rel=0.005)

    def test_mistral24b_footprint(self):
        m = get_model("mistral-24b")
        assert m.weight_bytes_bf16 / 2**30 == pytest.approx(43.92, rel=0.005)

    def test_tied_embeddings_counted_once(self):
        gemma = get_model("gemma3-12b")
        untied_equivalent = gemma.param_count() + gemma.embedding_params
        assert untied_equivalent > gemma.param_count()


class TestLayerShapes:
    def test_five_linear_layers(self):
        layers = get_model("llama3.1-8b").linear_layers()
        assert [l.kind for l in layers] == [
            "qkv_proj", "o_proj", "gateup_proj", "down_proj", "lm_head"
        ]

    def test_llama8b_shapes(self):
        layers = {l.kind: l for l in get_model("llama3.1-8b").linear_layers()}
        assert (layers["qkv_proj"].m, layers["qkv_proj"].k) == (6144, 4096)
        assert (layers["gateup_proj"].m, layers["gateup_proj"].k) == (
            28672, 4096
        )
        assert (layers["down_proj"].m, layers["down_proj"].k) == (4096, 14336)
        assert (layers["lm_head"].m, layers["lm_head"].k) == (128256, 4096)
        assert layers["qkv_proj"].count == 32
        assert layers["lm_head"].count == 1

    def test_gemma_q_dim_differs_from_hidden(self):
        m = get_model("gemma3-12b")
        assert m.q_dim == 4096 and m.hidden == 3840

    def test_layer_bytes(self):
        layer = get_model("llama3.1-8b").linear_layers()[0]
        assert layer.bytes_bf16 == 2 * layer.m * layer.k * layer.count


class TestKvGeometry:
    def test_llama8b_kv_bytes_per_token(self):
        # 2 (K,V) x 32 layers x 8 heads x 128 dim x 2 B = 128 KiB/token.
        assert get_model("llama3.1-8b").kv_bytes_per_token == 131072

    def test_gqa_reduces_kv(self):
        m = get_model("llama3.1-70b")
        full = 2 * 2 * m.n_layers * m.n_heads * m.head_dim
        assert m.kv_bytes_per_token < full
