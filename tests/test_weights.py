"""Tests for synthetic weight statistics and compression estimates."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.serving.models import get_model
from repro.serving.weights import (
    estimate_layer_compression,
    layer_sigma,
    materialize_layer,
    model_compression_report,
)
from repro.tcatbe import compress


class TestSigma:
    def test_glorot_scale(self):
        assert layer_sigma("o_proj", 4096, 4096) == pytest.approx(
            (2 / 8192) ** 0.5
        )

    def test_realistic_range(self):
        for m, k in [(4096, 4096), (28672, 4096), (152064, 8192)]:
            assert 0.003 < layer_sigma("x", m, k) < 0.03

    def test_validation(self):
        with pytest.raises(ConfigError):
            layer_sigma("x", 0, 5)


class TestEstimates:
    def test_tcatbe_ratio_band(self):
        comp = estimate_layer_compression(28672, 4096, 0.016, "tcatbe")
        assert 1.38 < comp.ratio < 1.46
        assert comp.coverage > 0.95

    def test_baseline_ratio_band(self):
        for scheme in ("dfloat11", "dietgpu", "nvcomp"):
            comp = estimate_layer_compression(4096, 4096, 0.016, scheme)
            assert 1.45 < comp.ratio < 1.56

    def test_dense_identity(self):
        assert estimate_layer_compression(64, 64, 0.02, "dense").ratio == 1.0

    def test_unknown_scheme(self):
        with pytest.raises(ConfigError):
            estimate_layer_compression(64, 64, 0.02, "zip")

    def test_analytic_matches_sampled(self):
        """The analytic erf-based estimate must track real compression."""
        sigma = 0.015
        analytic = estimate_layer_compression(512, 512, sigma, "tcatbe")
        sampled = compress(materialize_layer(512, 512, sigma, seed=3))
        assert analytic.ratio == pytest.approx(sampled.ratio, rel=0.02)
        assert analytic.coverage == pytest.approx(sampled.coverage, abs=0.01)

    def test_estimate_is_cached(self):
        a = estimate_layer_compression(128, 128, 0.02, "tcatbe")
        b = estimate_layer_compression(128, 128, 0.02, "tcatbe")
        assert a is b


class TestMaterialize:
    def test_shape_and_dtype(self):
        w = materialize_layer(32, 48, seed=1)
        assert w.shape == (32, 48) and w.dtype == np.uint16

    def test_default_sigma_used(self):
        w = materialize_layer(64, 64, seed=2)
        assert w is not None


class TestModelReport:
    def test_llama8b_matches_paper(self):
        report = model_compression_report(get_model("llama3.1-8b"))
        # Paper §6.5: 14.96 -> 10.83 GiB (72.4%).
        assert report["dense_gib"] == pytest.approx(14.96, abs=0.02)
        assert report["compressed_gib"] == pytest.approx(10.83, abs=0.25)
        assert report["fraction"] == pytest.approx(0.724, abs=0.015)

    def test_all_paper_models_near_71_percent(self):
        for name, expected in (
            ("llama3.1-8b", 0.724), ("mistral-24b", 0.713),
            ("llama3.1-70b", 0.711),
        ):
            report = model_compression_report(get_model(name))
            assert report["fraction"] == pytest.approx(expected, abs=0.02)

    def test_per_layer_entries(self):
        report = model_compression_report(get_model("llama3.1-8b"))
        assert "gateup_proj" in report["per_layer"]
        for entry in report["per_layer"].values():
            assert entry["ratio"] > 1.3

    def test_tied_model_keeps_embedding_dense(self):
        report = model_compression_report(get_model("gemma3-12b"))
        assert "lm_head" not in report["per_layer"]
        assert 0.70 < report["fraction"] < 0.80
