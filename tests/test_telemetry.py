"""The telemetry layer: attribution conservation, export, zero cost.

Four contracts:

* **conservation** — for every finished request, the seven attributed
  phase durations {queue, prefill, transfer_wait, wire, decode,
  preempt_recompute, decompress} sum to its end-to-end latency (±float
  eps) and none is negative, across {colocated, disagg chunked, fleet}
  × {preemption, backpressure stall, prefix-cache hit, rejection} —
  hypothesis-driven over trace shapes;
* **zero cost off** — telemetry is off by default
  (``result.telemetry is None``) and a telemetry-on run reproduces the
  telemetry-off floats exactly (the recorder only observes; it never
  participates in clock arithmetic).  The kernel-golden bit-compat
  matrix in ``tests/test_kernel.py`` runs with telemetry off and pins
  the off-path against the committed goldens;
* **export** — the Chrome-trace JSON passes the same schema validator
  CI runs (``tools/trace_report.py``): known ``ph`` types, monotone
  timestamps, matched B/E stall pairs, flow starts before finishes;
* **surfacing** — autoscaler decisions (``scale_events``) and the
  recorder itself ride on :class:`ContinuousResult`, so consumers never
  reach into the core object.
"""

import math
import sys
from pathlib import Path

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.serving import telemetry
from repro.serving.costs import StepBreakdown
from repro.serving.disagg import DisaggregatedCore
from repro.serving.fleet import AutoscalerConfig, FleetConfig, FleetCore
from repro.serving.kvcache import KVCacheSpec
from repro.serving.prefixcache import PrefixCacheConfig
from repro.serving.router import RouterConfig
from repro.serving.scheduler import Request
from repro.serving.serve import (
    BackpressureConfig,
    DisaggConfig,
    ServingConfig,
    ServingCore,
)
from repro.serving.telemetry import (
    PHASES,
    TelemetryConfig,
    TraceRecorder,
    recording,
)

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tools"))

from trace_report import validate_chrome_trace  # noqa: E402

#: Tiny KV geometry (the test_kernel.py toy): 512-byte 16-token blocks.
SPEC = KVCacheSpec(n_layers=1, kv_heads=1, head_dim=8, block_size=16)

TEL = TelemetryConfig()


class FlatCostModel:
    """Deterministic toy StepCostModel — milliseconds, not GPU math."""

    def decode_step(self, batch, ctx):
        return StepBreakdown(linear_s=1e-3 + batch * 1e-5 + ctx * 1e-7)

    def prefill_step(self, batch, prompt_len):
        return StepBreakdown(linear_s=1e-3 + batch * prompt_len * 1e-6)

    def mixed_step(self, decode_batch, decode_ctx, prefill_seqs,
                   prefill_tokens):
        return StepBreakdown(
            linear_s=(1e-3 + (decode_batch + prefill_tokens) * 1e-6
                      + decode_ctx * 1e-7)
        )


def reqs(specs):
    """[(prompt, out, arrival)] or [(prompt, out, arrival, kwargs)]."""
    out = []
    for i, spec in enumerate(specs):
        p, o, a = spec[:3]
        kw = spec[3] if len(spec) > 3 else {}
        out.append(Request(i, prompt_len=p, max_new_tokens=o,
                           arrival_s=a, **kw))
    return out


def colocated_core(n_blocks=64, **cfg_kw):
    cfg_kw.setdefault("telemetry", TEL)
    config = ServingConfig(**cfg_kw)
    return ServingCore(
        FlatCostModel(), SPEC, n_blocks * SPEC.bytes_per_block, config
    )


def disagg_core(n_blocks=64, *, config_kw=None, **disagg_kw):
    config = ServingConfig(
        mode="disaggregated", telemetry=TEL,
        disagg=DisaggConfig(**disagg_kw),
        **(config_kw or {}),
    )
    return DisaggregatedCore(
        FlatCostModel(), SPEC, n_blocks * SPEC.bytes_per_block, config
    )


def fleet_core(n_blocks=64, **fleet_kw):
    config = ServingConfig(
        mode="fleet", telemetry=TEL, fleet=FleetConfig(**fleet_kw)
    )
    return FleetCore(
        FlatCostModel(), SPEC, n_blocks * SPEC.bytes_per_block, config
    )


def assert_conserves(result) -> TraceRecorder:
    """Per-request phases sum to e2e; attribution matches the timings."""
    rec = result.telemetry
    assert rec is not None
    # Only (exactly) the finished requests get an attribution.
    assert len(rec.attributions) == result.n_requests
    stamped = {t.request_id: t for t in result.timings}
    for attr in rec.attributions.values():
        seconds = attr.phase_seconds()
        assert set(seconds) == set(PHASES)
        for phase, value in seconds.items():
            assert value >= -1e-12, (attr.request_id, phase, value)
        assert math.isclose(
            sum(seconds.values()), attr.e2e_s,
            rel_tol=1e-9, abs_tol=1e-12,
        ), (attr.request_id, sum(seconds.values()), attr.e2e_s)
        timing = stamped[attr.request_id]
        assert attr.finish_s == timing.finish_s
        assert attr.arrival_s == timing.arrival_s
    return rec


# ----------------------------------------------------------------------
# Hypothesis trace shapes
# ----------------------------------------------------------------------
@st.composite
def trace_specs(draw, n_max=8, out_max=20):
    """A bursty toy trace: monotone arrivals, varied prompts/outputs."""
    n = draw(st.integers(min_value=2, max_value=n_max))
    specs, t = [], 0.0
    for _ in range(n):
        t += draw(st.floats(min_value=0.0, max_value=0.02,
                            allow_nan=False, allow_infinity=False))
        specs.append((
            draw(st.integers(min_value=4, max_value=80)),
            draw(st.integers(min_value=1, max_value=out_max)),
            t,
        ))
    return specs


@st.composite
def session_specs(draw):
    """Two-turn sessions whose second turn re-offers the first prompt."""
    n_sessions = draw(st.integers(min_value=1, max_value=4))
    specs = []
    for s in range(n_sessions):
        t0 = s * draw(st.floats(min_value=0.0, max_value=0.01,
                                allow_nan=False))
        first = draw(st.integers(min_value=2, max_value=5)) * 16
        specs.append((first, draw(st.integers(min_value=1, max_value=8)),
                      t0, {"session_id": s}))
        specs.append((
            first + draw(st.integers(min_value=8, max_value=64)),
            draw(st.integers(min_value=1, max_value=8)),
            t0 + draw(st.floats(min_value=0.05, max_value=0.5,
                                allow_nan=False)),
            {"session_id": s, "prefix_tokens": first},
        ))
    return specs


class TestConservation:
    """Phases sum to e2e across topologies × lifecycle features."""

    @given(trace_specs())
    def test_colocated_group_with_preemption_pressure(self, specs):
        # 8 blocks = 128 KV tokens: long prompts + decode growth preempt.
        assert_conserves(colocated_core(n_blocks=8).serve(reqs(specs)))

    @given(trace_specs())
    def test_colocated_chunked_with_preemption_pressure(self, specs):
        result = colocated_core(
            n_blocks=8, prefill_mode="chunked", cost_bucket=4,
        ).serve(reqs(specs))
        assert_conserves(result)

    @given(trace_specs())
    def test_disagg_chunked_with_backpressure(self, specs):
        result = disagg_core(
            n_blocks=16, prefill_mode="chunked",
            backpressure=BackpressureConfig(min_free_kv_frac=0.5),
            config_kw={"prefill_mode": "chunked"},
        ).serve(reqs(specs))
        rec = assert_conserves(result)
        # Every request's KV crossed the wire exactly once.
        wires = [e for e in rec.events if e.kind == "wire"]
        assert len(wires) == result.n_requests

    @given(trace_specs(out_max=8))
    def test_fleet_with_rejection(self, specs):
        result = fleet_core(
            n_blocks=32, n_replicas=2,
            router=RouterConfig(max_outstanding_per_replica=2),
        ).serve(reqs(specs))
        rec = assert_conserves(result)
        assert result.n_requests + result.n_rejected == len(specs)
        rejects = sum(1 for e in rec.events if e.kind == "reject")
        assert rejects == result.n_rejected

    @given(session_specs())
    def test_colocated_prefix_cache_hits(self, specs):
        result = colocated_core(
            prefill_mode="chunked",
            prefix_cache=PrefixCacheConfig(
                capacity_frac=0.5, hot_frac=0.25, codec="kvcomp"
            ),
        ).serve(reqs(specs))
        rec = assert_conserves(result)
        stats = result.prefix_cache
        assert rec.metrics.counters.get("cache/hits", 0) == stats.n_hits


class TestLifecycleEvents:
    """Deterministic scenarios where each feature provably fires."""

    #: Eight identical prompts at once: saturates a small decode pool.
    BURST = [(64, 30, 0.0)] * 8

    def test_preemption_charges_recompute_phase(self):
        result = colocated_core(n_blocks=8).serve(
            reqs([(24, 40, 0.0), (24, 40, 0.001), (24, 40, 0.002)])
        )
        rec = assert_conserves(result)
        assert result.n_preemptions > 0
        preempts = [e for e in rec.events if e.kind == "preempt"]
        assert len(preempts) == result.n_preemptions
        recompute = sum(
            a.preempt_recompute_s for a in rec.attributions.values()
        )
        assert recompute > 0.0

    def test_backpressure_stall_events_bracket_the_stall(self):
        result = disagg_core(
            n_blocks=16,
            backpressure=BackpressureConfig(min_free_kv_frac=0.25),
        ).serve(reqs(self.BURST))
        rec = assert_conserves(result)
        assert result.pool("prefill").stall_s > 0.0
        begins = [e for e in rec.events if e.kind == "stall_begin"]
        ends = [e for e in rec.events if e.kind == "stall_end"]
        assert len(begins) == len(ends) > 0
        total = sum(
            e.t_s - b.t_s for b, e in zip(begins, ends)
        )
        assert math.isclose(
            total, result.pool("prefill").stall_s, rel_tol=1e-9
        )

    def test_cache_hit_charges_decompress_out_of_prefill(self):
        core = colocated_core(
            prefill_mode="chunked",
            prefix_cache=PrefixCacheConfig(
                capacity_frac=0.5, hot_frac=0.25, codec="kvcomp"
            ),
        )
        specs = []
        for s in range(4):
            specs.append((32, 4, s * 0.001, {"session_id": s}))
            specs.append((96, 4, 0.2 + s * 0.001,
                          {"session_id": s, "prefix_tokens": 32}))
        result = core.serve(reqs(specs))
        rec = assert_conserves(result)
        assert result.prefix_cache.n_hits > 0
        assert result.prefix_cache.n_demotions > 0
        assert rec.metrics.counters["cache/demotes"] > 0
        # Cold hits pay a decompress charge, reassigned zero-sum out of
        # the admitting prefill interval — conservation already held.
        assert sum(a.decompress_s for a in rec.attributions.values()) > 0.0

    def test_rejected_requests_leave_no_attribution(self):
        result = fleet_core(
            n_replicas=1,
            router=RouterConfig(max_outstanding_per_replica=2),
        ).serve(reqs([(24, 10, 0.0)] * 8))
        rec = assert_conserves(result)
        assert result.n_rejected > 0
        rejected_ids = {
            e.request_id for e in rec.events if e.kind == "reject"
        }
        assert len(rejected_ids) == result.n_rejected
        assert rejected_ids.isdisjoint(rec.attributions)

    def test_scale_events_surface_on_the_result(self):
        result = fleet_core(
            n_replicas=3, routing="least_outstanding",
            autoscaler=AutoscalerConfig(
                min_replicas=1, interval_s=0.01, kv_high_frac=0.05,
                kv_low_frac=0.01,
            ),
        ).serve(reqs([(48, 20, i * 0.001) for i in range(12)]))
        assert any(e.action == "up" for e in result.scale_events)
        rec = result.telemetry
        scales = [e for e in rec.events if e.kind == "scale"]
        assert len(scales) == len(result.scale_events)
        assert [e.args["action"] for e in scales] == [
            e.action for e in result.scale_events
        ]
        # Per-replica stats ride along too — no reaching into the core.
        assert len(result.replicas) == 3


class TestZeroCostOff:
    def test_off_by_default(self):
        core = ServingCore(
            FlatCostModel(), SPEC, 64 * SPEC.bytes_per_block,
            ServingConfig(),
        )
        result = core.serve(reqs([(24, 4, 0.0)]))
        assert ServingConfig().telemetry is None
        assert result.telemetry is None

    @pytest.mark.parametrize("topology", [
        "colocated-group", "colocated-chunked", "disagg", "fleet",
    ])
    def test_recording_reproduces_off_floats_exactly(self, topology):
        specs = [(24, 12, 0.0), (40, 8, 0.002), (16, 20, 0.004),
                 (64, 6, 0.006), (32, 16, 0.1), (20, 10, 0.102)]

        def run(telemetry_cfg):
            if topology == "colocated-group":
                core = colocated_core(n_blocks=16, telemetry=telemetry_cfg)
            elif topology == "colocated-chunked":
                core = colocated_core(
                    n_blocks=16, prefill_mode="chunked", cost_bucket=4,
                    telemetry=telemetry_cfg,
                )
            elif topology == "disagg":
                config = ServingConfig(
                    mode="disaggregated", telemetry=telemetry_cfg,
                    disagg=DisaggConfig(
                        backpressure=BackpressureConfig(
                            min_free_kv_frac=0.25
                        ),
                    ),
                )
                core = DisaggregatedCore(
                    FlatCostModel(), SPEC, 16 * SPEC.bytes_per_block,
                    config,
                )
            else:
                config = ServingConfig(
                    mode="fleet", telemetry=telemetry_cfg,
                    fleet=FleetConfig(n_replicas=2),
                )
                core = FleetCore(
                    FlatCostModel(), SPEC, 32 * SPEC.bytes_per_block,
                    config,
                )
            return core.serve(reqs(specs))

        off = run(None)
        on = run(TEL)
        assert off.telemetry is None and on.telemetry is not None
        # Float-exact equality: telemetry observed, never participated.
        assert on.makespan_s == off.makespan_s
        assert on.timings == off.timings
        assert on.n_steps == off.n_steps
        assert on.n_preemptions == off.n_preemptions


class TestChromeExport:
    def _stall_run(self):
        return disagg_core(
            n_blocks=16,
            backpressure=BackpressureConfig(min_free_kv_frac=0.25),
        ).serve(reqs(TestLifecycleEvents.BURST))

    def test_export_passes_the_ci_schema_validator(self):
        rec = self._stall_run().telemetry
        assert validate_chrome_trace(rec.chrome_trace()) == []

    def test_flows_link_transfer_enqueue_to_delivery(self):
        result = self._stall_run()
        trace = result.telemetry.chrome_trace()
        starts = [r for r in trace["traceEvents"] if r["ph"] == "s"]
        ends = [r for r in trace["traceEvents"] if r["ph"] == "f"]
        assert len(starts) == len(ends) == result.n_requests
        assert {r["id"] for r in starts} == {r["id"] for r in ends}

    def test_stall_pairs_match_in_export(self):
        trace = self._stall_run().telemetry.chrome_trace()
        depth = 0
        for row in trace["traceEvents"]:
            if row["ph"] == "B":
                depth += 1
            elif row["ph"] == "E":
                depth -= 1
                assert depth >= 0
        assert depth == 0

    def test_write_chrome_trace_roundtrips(self, tmp_path):
        import json

        rec = self._stall_run().telemetry
        path = tmp_path / "trace.json"
        rec.write_chrome_trace(path)
        data = json.loads(path.read_text())
        assert validate_chrome_trace(data) == []
        assert data["otherData"]["n_attributed"] == len(rec.attributions)

    def test_validator_flags_broken_traces(self):
        ok = {"traceEvents": [
            {"ph": "X", "pid": 1, "tid": 1, "ts": 1.0, "name": "a",
             "dur": 2.0},
        ]}
        assert validate_chrome_trace(ok) == []
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({"traceEvents": [
            {"ph": "?", "pid": 1, "tid": 1, "ts": 0, "name": "a"},
        ]}) != []
        assert validate_chrome_trace({"traceEvents": [
            {"ph": "i", "pid": 1, "tid": 1, "ts": 5.0, "name": "a"},
            {"ph": "i", "pid": 1, "tid": 1, "ts": 1.0, "name": "b"},
        ]}) != []
        assert validate_chrome_trace({"traceEvents": [
            {"ph": "E", "pid": 1, "tid": 1, "ts": 0.0, "name": "stall"},
        ]}) != []
        assert validate_chrome_trace({"traceEvents": [
            {"ph": "f", "pid": 1, "tid": 1, "ts": 0.0, "name": "kv",
             "id": 9},
        ]}) != []


class TestAmbientRecording:
    def test_recording_context_captures_config_less_runs(self):
        core = ServingCore(
            FlatCostModel(), SPEC, 64 * SPEC.bytes_per_block,
            ServingConfig(),
        )
        with recording() as handle:
            result = core.serve(reqs([(24, 4, 0.0), (32, 6, 0.01)]))
        assert result.telemetry is handle.recorder
        assert_conserves(result)
        # The default is restored: runs after the context are silent.
        after = ServingCore(
            FlatCostModel(), SPEC, 64 * SPEC.bytes_per_block,
            ServingConfig(),
        ).serve(reqs([(24, 4, 0.0)]))
        assert after.telemetry is None

    def test_explicit_config_wins_over_ambient(self):
        cfg = TelemetryConfig(events=False)
        core = ServingCore(
            FlatCostModel(), SPEC, 64 * SPEC.bytes_per_block,
            ServingConfig(telemetry=cfg),
        )
        with recording():
            result = core.serve(reqs([(24, 4, 0.0)]))
        assert result.telemetry.events == []
        assert len(result.telemetry.attributions) == 1

    def test_disabled_config_builds_no_recorder(self):
        assert TelemetryConfig(enabled=False).build() is None
        assert telemetry.build_recorder(None) is None


class TestRecorderPrimitives:
    def test_transition_clamps_backward_time(self):
        rec = TraceRecorder(TelemetryConfig())
        req = Request(0, prompt_len=8, max_new_tokens=1, arrival_s=1.0)
        rec.on_arrival(req, track="engine")
        rec.on_admit(req, 2.0, "engine")
        # A stale hint earlier than the phase boundary must not produce
        # a negative charge — it clamps to the boundary instead.
        rec.transition(req, 1.5, "decode")
        req.finish_s = 3.0
        rec.on_finish(req, 3.0, "engine")
        attr = rec.attributions[0]
        assert attr.queue_s == 1.0
        assert attr.prefill_s == 0.0
        assert attr.decode_s == 1.0
        assert math.isclose(
            sum(attr.phase_seconds().values()), attr.e2e_s, rel_tol=1e-12
        )

    def test_unknown_request_transitions_are_ignored(self):
        rec = TraceRecorder(TelemetryConfig())
        ghost = Request(99, prompt_len=8, max_new_tokens=1)
        rec.transition(ghost, 1.0, "decode")  # must not raise
        ghost.finish_s = 2.0
        rec.on_finish(ghost, 2.0, "engine")
        assert 99 not in rec.attributions

    def test_phase_shares_normalize(self):
        rec = TraceRecorder(TelemetryConfig())
        for i, arrive in enumerate((0.0, 0.5)):
            req = Request(i, prompt_len=8, max_new_tokens=1,
                          arrival_s=arrive)
            rec.on_arrival(req, track="engine")
            rec.on_admit(req, arrive + 0.25, "engine")
            rec.transition(req, arrive + 0.5, "decode")
            req.finish_s = arrive + 1.0
            rec.on_finish(req, arrive + 1.0, "engine")
        shares = rec.phase_shares()
        assert math.isclose(sum(shares.values()), 1.0, rel_tol=1e-12)
        assert shares["queue"] == 0.25
        assert shares["prefill"] == 0.25
        assert shares["decode"] == 0.5

    def test_slowest_orders_by_latency(self):
        rec = TraceRecorder(TelemetryConfig())
        for i, e2e in enumerate((0.5, 2.0, 1.0)):
            req = Request(i, prompt_len=8, max_new_tokens=1, arrival_s=0.0)
            rec.on_arrival(req, track="engine")
            rec.on_admit(req, 0.1, "engine")
            req.finish_s = e2e
            rec.on_finish(req, e2e, "engine")
        assert [a.request_id for a in rec.slowest(2)] == [1, 2]
